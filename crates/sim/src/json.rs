//! Minimal JSON rendering for machine-readable benchmark output.
//!
//! The build environment vendors a marker-only `serde` stand-in (see
//! `vendor/serde`), so the workspace cannot rely on `serde_json`.  The
//! figure and ablation binaries still need to emit `BENCH_results.json`
//! trajectories; this module renders the handful of result types
//! ([`RunMetrics`], [`LoadPoint`], [`FigureSeries`]) by hand.  The types all
//! derive `serde::Serialize`, so swapping the vendored stand-in for the real
//! crates-io `serde` + `serde_json` makes this module redundant without any
//! type changes.

use crate::experiment::{LoadPoint, RunMetrics};
use crate::figures::{
    FaultSeries, FigureSeries, PopulationPoint, RecoveryPoint, RecoverySeries, TimelineBin,
    TimeoutPoint, TimeoutSeries,
};
use crate::scenarios::{AdaptiveComparison, PolicyOutcome, ScenarioCell};

/// A JSON value assembled programmatically and rendered with
/// [`JsonValue::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document (the inverse of [`JsonValue::render`]).
    ///
    /// Used by the benchmark binaries to merge a new section into an
    /// existing `BENCH_results.json` without discarding the sections other
    /// binaries wrote.  Object keys keep their document order.  Returns
    /// `None` on any syntax error or trailing garbage.
    pub fn parse(text: &str) -> Option<Self> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = Self::parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Option<Self> {
        skip_ws(b, pos);
        match b.get(*pos)? {
            b'n' => parse_literal(b, pos, "null", JsonValue::Null),
            b't' => parse_literal(b, pos, "true", JsonValue::Bool(true)),
            b'f' => parse_literal(b, pos, "false", JsonValue::Bool(false)),
            b'"' => Self::parse_string(b, pos).map(JsonValue::Str),
            b'[' => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Some(JsonValue::Array(items));
                }
                loop {
                    items.push(Self::parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos)? {
                        b',' => *pos += 1,
                        b']' => {
                            *pos += 1;
                            return Some(JsonValue::Array(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'{' => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Some(JsonValue::Object(entries));
                }
                loop {
                    skip_ws(b, pos);
                    let key = Self::parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return None;
                    }
                    *pos += 1;
                    entries.push((key, Self::parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos)? {
                        b',' => *pos += 1,
                        b'}' => {
                            *pos += 1;
                            return Some(JsonValue::Object(entries));
                        }
                        _ => return None,
                    }
                }
            }
            _ => Self::parse_number(b, pos),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
        if b.get(*pos) != Some(&b'"') {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*pos + 1..*pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            // Surrogates are not expected in our own output;
                            // map unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                &c if c < 0x20 => return None,
                _ => {
                    // Copy a whole UTF-8 scalar.
                    let start = *pos;
                    let mut end = start + 1;
                    while end < b.len() && (b[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[start..end]).ok()?);
                    *pos = end;
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Option<Self> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while matches!(
            b.get(*pos),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            *pos += 1;
        }
        if *pos == start {
            return None;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
    }

    /// Convenience constructor for object values.
    pub fn object(entries: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest round-trip float formatting is valid
                    // JSON for finite values.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(
        b.get(*pos),
        Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
    ) {
        *pos += 1;
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Option<JsonValue> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

/// Types that know their JSON representation.
pub trait ToJson {
    /// Converts the value into a [`JsonValue`] tree.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("offered_tps", JsonValue::Num(self.offered_tps)),
            ("throughput_tps", JsonValue::Num(self.throughput_tps)),
            ("avg_latency_ms", JsonValue::Num(self.avg_latency_ms)),
            ("p50_latency_ms", JsonValue::Num(self.p50_latency_ms)),
            ("p95_latency_ms", JsonValue::Num(self.p95_latency_ms)),
            ("p99_latency_ms", JsonValue::Num(self.p99_latency_ms)),
            ("committed", JsonValue::Num(self.committed as f64)),
            ("aborted", JsonValue::Num(self.aborted as f64)),
        ])
    }
}

impl ToJson for LoadPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("offered_tps", JsonValue::Num(self.offered_tps)),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl ToJson for FigureSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::Str(self.label.clone())),
            (
                "points",
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for TimelineBin {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("t_ms", JsonValue::Num(self.t_ms)),
            ("committed_tps", JsonValue::Num(self.committed_tps)),
            ("avg_latency_ms", JsonValue::Num(self.avg_latency_ms)),
        ])
    }
}

impl ToJson for FaultSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::Str(self.label.clone())),
            ("crash_ms", JsonValue::Num(self.crash_ms)),
            ("recover_ms", JsonValue::Num(self.recover_ms)),
            ("view_changes", JsonValue::Num(self.view_changes as f64)),
            (
                "timeline",
                JsonValue::Array(self.timeline.iter().map(ToJson::to_json).collect()),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl ToJson for RecoveryPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("outage_ms", JsonValue::Num(self.outage_ms)),
            ("recovery_ms", JsonValue::Num(self.recovery_ms)),
            (
                "transferred_commands",
                JsonValue::Num(self.transferred_commands as f64),
            ),
            (
                "transferred_bytes",
                JsonValue::Num(self.transferred_bytes as f64),
            ),
            (
                "victim_frontier",
                JsonValue::Num(self.victim_frontier as f64),
            ),
            (
                "healthy_frontier",
                JsonValue::Num(self.healthy_frontier as f64),
            ),
            ("vote_entries", JsonValue::Num(self.vote_entries as f64)),
            (
                "vote_entries_unbounded",
                JsonValue::Num(self.vote_entries_unbounded as f64),
            ),
            ("vote_bytes", JsonValue::Num(self.vote_bytes() as f64)),
            (
                "vote_bytes_unbounded",
                JsonValue::Num(self.vote_bytes_unbounded() as f64),
            ),
            (
                "stable_checkpoint",
                JsonValue::Num(self.stable_checkpoint as f64),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

impl ToJson for RecoverySeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::Str(self.label.clone())),
            (
                "checkpoint_interval",
                JsonValue::Num(self.checkpoint_interval as f64),
            ),
            (
                "points",
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for TimeoutPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("timeout_ms", JsonValue::Num(self.timeout_ms)),
            (
                "false_suspicions",
                JsonValue::Num(self.false_suspicions as f64),
            ),
            (
                "false_suspicion_rate",
                JsonValue::Num(self.false_suspicion_rate),
            ),
            ("recovery_ms", JsonValue::Num(self.recovery_ms)),
            ("crash_run_tps", JsonValue::Num(self.crash_run_tps)),
        ])
    }
}

impl ToJson for TimeoutSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::Str(self.label.clone())),
            (
                "points",
                JsonValue::Array(self.points.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for ScenarioCell {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("stack", JsonValue::Str(self.stack.clone())),
            ("policy", JsonValue::Str(self.policy.clone())),
            ("metrics", self.metrics.to_json()),
            ("view_changes", JsonValue::Num(self.view_changes as f64)),
            (
                "certificate_conflicts",
                JsonValue::Num(self.certificate_conflicts as f64),
            ),
            (
                "safety_violations",
                JsonValue::Array(
                    self.safety_violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for PolicyOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::Str(self.label.clone())),
            ("recovery_ms", JsonValue::Num(self.recovery_ms)),
            (
                "false_suspicions",
                JsonValue::Num(self.false_suspicions as f64),
            ),
            ("crash_run_tps", JsonValue::Num(self.crash_run_tps)),
        ])
    }
}

impl ToJson for AdaptiveComparison {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "fixed",
                JsonValue::Array(self.fixed.iter().map(ToJson::to_json).collect()),
            ),
            ("adaptive", self.adaptive.to_json()),
            ("best_fixed", self.best_fixed.to_json()),
        ])
    }
}

impl ToJson for PopulationPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("users", JsonValue::Num(self.users as f64)),
            ("domains", JsonValue::Num(self.domains as f64)),
            ("metrics", self.metrics.to_json()),
            ("submitted", JsonValue::Num(self.submitted as f64)),
            ("sampled", JsonValue::Num(self.sampled as f64)),
            ("peak_inflight", JsonValue::Num(self.peak_inflight as f64)),
            (
                "peak_pending_events",
                JsonValue::Num(self.peak_pending_events as f64),
            ),
            (
                "events_processed",
                JsonValue::Num(self.events_processed as f64),
            ),
            ("events_per_tx", JsonValue::Num(self.events_per_tx)),
            ("wall_ms", JsonValue::Num(self.wall_ms)),
            ("resident_kb", JsonValue::Num(self.resident_kb as f64)),
        ])
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = JsonValue::object([
            ("label", JsonValue::Str("Opt-90%C \"quoted\"\n".into())),
            (
                "points",
                JsonValue::Array(vec![
                    JsonValue::Num(1.5),
                    JsonValue::Num(-2e-3),
                    JsonValue::Bool(false),
                    JsonValue::Null,
                    JsonValue::Object(vec![]),
                ]),
            ),
        ]);
        let parsed = JsonValue::parse(&doc.render()).expect("own output parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            JsonValue::parse(" { \"a\" : [ 1 , 2 ] } "),
            Some(JsonValue::object([(
                "a",
                JsonValue::Array(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)])
            )]))
        );
        assert_eq!(JsonValue::parse("{\"a\":1} trailing"), None);
        assert_eq!(JsonValue::parse("{\"a\":}"), None);
        assert_eq!(JsonValue::parse("[1,]"), None);
        assert_eq!(JsonValue::parse(""), None);
    }

    #[test]
    fn parse_handles_existing_bench_results_shape() {
        let existing = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_results.json"),
        );
        if let Ok(text) = existing {
            let parsed = JsonValue::parse(&text).expect("checked-in BENCH_results parses");
            assert!(matches!(parsed, JsonValue::Object(_)));
        }
    }

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Num(1.5).render(), "1.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn metrics_render_as_an_object_with_every_field() {
        let m = RunMetrics {
            offered_tps: 600.0,
            throughput_tps: 590.0,
            avg_latency_ms: 8.5,
            p50_latency_ms: 1.0,
            p95_latency_ms: 37.0,
            p99_latency_ms: 46.0,
            committed: 177,
            aborted: 1,
        };
        let json = m.to_json().render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "offered_tps",
            "throughput_tps",
            "avg_latency_ms",
            "p50_latency_ms",
            "p95_latency_ms",
            "p99_latency_ms",
            "committed",
            "aborted",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(json.contains("\"committed\":177"));
    }

    #[test]
    fn series_render_with_labels_and_points() {
        let series = vec![FigureSeries {
            label: "Coordinator b=8".into(),
            points: vec![LoadPoint {
                offered_tps: 600.0,
                metrics: RunMetrics::default(),
            }],
        }];
        let json = series.to_json().render();
        assert!(json.contains("\"label\":\"Coordinator b=8\""));
        assert!(json.contains("\"points\":[{"));
    }
}
