//! Ready-made experiment grids reproducing every figure of the paper's
//! evaluation (Figures 7–13) plus the ablations called out in `DESIGN.md`.
//!
//! Each `figure*` function returns one [`FigureSeries`] per curve of the
//! corresponding figure; the `saguaro-bench` binaries print them as tables
//! and `EXPERIMENTS.md` records the paper-vs-measured comparison.

use crate::experiment::{ExperimentSpec, LoadPoint, RidesharingConfig, RunMetrics};
use crate::par::parallel_map;
use crate::protocol::ProtocolKind;
use saguaro_hierarchy::Placement;
use saguaro_net::FaultSchedule;
use saguaro_types::{DomainId, Duration, FailureModel, NodeId, PopulationConfig, SimTime};

/// One curve of a figure: a label plus its load sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FigureSeries {
    /// Curve label as it appears in the paper's legend.
    pub label: String,
    /// Measured points.
    pub points: Vec<LoadPoint>,
}

/// Options controlling how exhaustively the figures are regenerated.
#[derive(Clone, Debug)]
pub struct FigureOptions {
    /// Offered loads to sweep (tx/s).
    pub loads: Vec<f64>,
    /// Use the abbreviated measurement windows (CI / smoke runs).
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FigureOptions {
    fn default() -> Self {
        Self {
            loads: vec![1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0],
            quick: false,
            seed: 42,
        }
    }
}

impl FigureOptions {
    /// A fast configuration for tests and Criterion benches.
    pub fn smoke() -> Self {
        Self {
            loads: vec![600.0, 1_200.0],
            quick: true,
            seed: 42,
        }
    }
}

fn spec(protocol: ProtocolKind, options: &FigureOptions) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(protocol);
    s.seed = options.seed;
    if options.quick {
        s = s.quick();
    }
    s
}

/// Sweeps every `(series, load)` cell of a figure as one flat parallel grid.
///
/// A figure's curves are independent runs just like its load points, so
/// flattening `series × loads` before fanning out keeps all cores busy even
/// when the load grid is short (e.g. smoke mode's two loads).  Results are
/// regrouped in series order, each series' points in load order — the same
/// output a nested sequential sweep would produce.
fn sweep_series(entries: Vec<(String, ExperimentSpec)>, loads: &[f64]) -> Vec<FigureSeries> {
    let jobs: Vec<ExperimentSpec> = entries
        .iter()
        .flat_map(|(_, s)| {
            loads.iter().map(|l| {
                let mut cell = s.clone();
                cell.offered_load_tps = *l;
                cell
            })
        })
        .collect();
    let mut metrics = parallel_map(&jobs, |s| s.run()).into_iter();
    entries
        .into_iter()
        .map(|(label, _)| FigureSeries {
            label,
            points: loads
                .iter()
                .map(|l| LoadPoint {
                    offered_tps: *l,
                    metrics: metrics.next().expect("one result per grid cell"),
                })
                .collect(),
        })
        .collect()
}

/// The six curves every cross-domain figure plots: AHL, SharPer, the
/// coordinator-based protocol and the optimistic protocol at 10 / 50 / 90 %
/// contention.
fn cross_domain_curves(
    options: &FigureOptions,
    configure: impl Fn(ExperimentSpec) -> ExperimentSpec,
) -> Vec<FigureSeries> {
    let protos = [
        (ProtocolKind::Ahl, "AHL", None),
        (ProtocolKind::Sharper, "SharPer", None),
        (ProtocolKind::SaguaroCoordinator, "Coordinator", None),
        (ProtocolKind::SaguaroOptimistic, "Opt-10%C", Some(0.10)),
        (ProtocolKind::SaguaroOptimistic, "Opt-50%C", Some(0.50)),
        (ProtocolKind::SaguaroOptimistic, "Opt-90%C", Some(0.90)),
    ];
    let entries = protos
        .into_iter()
        .map(|(proto, label, contention)| {
            let mut s = configure(spec(proto, options));
            if let Some(c) = contention {
                s = s.contention(c);
            }
            (label.to_string(), s)
        })
        .collect();
    sweep_series(entries, &options.loads)
}

/// Figure 7: cross-domain transactions, crash-only domains, nearby regions.
/// `cross_pct` selects the sub-figure: 0.2 (a), 0.8 (b) or 1.0 (c).
pub fn figure7(cross_pct: f64, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| s.cross_domain(cross_pct))
}

/// Figure 8: cross-domain transactions, Byzantine domains, nearby regions.
pub fn figure8(cross_pct: f64, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| s.byzantine().cross_domain(cross_pct))
}

/// Figures 9 (nearby) and 11 (wide area): transactions initiated by mobile
/// devices, one curve per mobile percentage.
pub fn figure_mobile(
    placement: Placement,
    model: FailureModel,
    options: &FigureOptions,
) -> Vec<FigureSeries> {
    let entries = [0.0, 0.2, 0.8, 1.0]
        .iter()
        .map(|mobile| {
            let mut s = spec(ProtocolKind::SaguaroCoordinator, options)
                .placed(placement)
                .mobile(*mobile);
            if model == FailureModel::Byzantine {
                s = s.byzantine();
            }
            (format!("{}%Mobile", (mobile * 100.0) as u32), s)
        })
        .collect();
    sweep_series(entries, &options.loads)
}

/// Figure 9: mobile devices over nearby regions.
pub fn figure9(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    figure_mobile(Placement::NearbyRegions, model, options)
}

/// Figure 10: scalability over wide-area domains (90 % internal / 10 %
/// cross-domain, seven far-apart regions).
pub fn figure10(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| {
        let s = s.placed(Placement::WideArea).cross_domain(0.10);
        if model == FailureModel::Byzantine {
            s.byzantine()
        } else {
            s
        }
    })
}

/// Figure 11: mobile devices over the wide-area placement.
pub fn figure11(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    figure_mobile(Placement::WideArea, model, options)
}

/// Figures 12 and 13: fault-tolerance scalability — all protocols, single
/// region, 90/10 workload, larger domains (`f` = 2 or 4).
pub fn figure_ft(model: FailureModel, faults: usize, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| {
        let s = s
            .placed(Placement::SingleRegion)
            .cross_domain(0.10)
            .with_faults(faults);
        if model == FailureModel::Byzantine {
            s.byzantine()
        } else {
            s
        }
    })
}

/// Ablation: LCA coordinator versus a fixed root coordinator.  The AHL
/// baseline *is* the fixed-root configuration over the same substrate, so the
/// ablation compares `Coordinator` against `AHL` at 100 % cross-domain.
pub fn ablation_lca_vs_root(options: &FigureOptions) -> Vec<FigureSeries> {
    let entries = [
        (ProtocolKind::SaguaroCoordinator, "LCA coordinator"),
        (ProtocolKind::Ahl, "Fixed root coordinator"),
    ]
    .iter()
    .map(|(proto, label)| (label.to_string(), spec(*proto, options).cross_domain(1.0)))
    .collect();
    sweep_series(entries, &options.loads)
}

/// Ablation: how the contention knob affects the optimistic protocol's abort
/// behaviour (complement of the Opt-x%C curves).
pub fn ablation_contention(options: &FigureOptions) -> Vec<FigureSeries> {
    let entries = [0.1, 0.5, 0.9]
        .iter()
        .map(|c| {
            (
                format!("contention {}%", (c * 100.0) as u32),
                spec(ProtocolKind::SaguaroOptimistic, options)
                    .cross_domain(0.8)
                    .contention(*c),
            )
        })
        .collect();
    sweep_series(entries, &options.loads)
}

/// Batch sizes and offered loads exercised by [`ablation_batch`]: the loads
/// sit at and beyond the unbatched pipeline's saturation point (~180 k tx/s
/// committed on the figure-7 topology), where consensus message cost — the
/// thing batching amortises — is the binding constraint.
fn batch_ablation_grid(quick: bool) -> (Vec<f64>, Vec<usize>) {
    if quick {
        (vec![220_000.0], vec![1, 8])
    } else {
        (vec![160_000.0, 220_000.0], vec![1, 8, 16])
    }
}

/// Ablation: consensus block size (request batching) on the figure-7
/// topology (crash-only domains, nearby regions), internal transactions at
/// saturation offered load.  One series per `(stack, max_batch)` pair, all
/// four stacks, so the batched-vs-unbatched delta is apples-to-apples across
/// Saguaro and the baselines.  `options.loads` is ignored: the ablation
/// picks saturation loads itself (see [`batch_ablation_grid`]).
pub fn ablation_batch(options: &FigureOptions) -> Vec<FigureSeries> {
    let (loads, sizes) = batch_ablation_grid(options.quick);
    let mut entries = Vec::new();
    for proto in ProtocolKind::ALL {
        for &b in &sizes {
            entries.push((
                format!("{} b={b}", proto.label()),
                spec(proto, options).tune(|t| t.batch_size(b)),
            ));
        }
    }
    sweep_series(entries, &loads)
}

/// Per-stack committed-throughput delta of the largest batch size over
/// `b=1`, measured at the highest load of a [`ablation_batch`] result:
/// `(stack label, b=1 tput, largest-batch tput, delta %)`.
pub fn batch_throughput_delta(series: &[FigureSeries]) -> Vec<(String, f64, f64, f64)> {
    let mut out = Vec::new();
    for proto in ProtocolKind::ALL {
        let prefix = format!("{} b=", proto.label());
        // `(max_batch, throughput at the highest load)` per series of this
        // stack, keyed by the numeric suffix of the label.
        let mut sized: Vec<(usize, f64)> = series
            .iter()
            .filter_map(|s| {
                let size: usize = s.label.strip_prefix(&prefix)?.parse().ok()?;
                let tput = s.points.last()?.metrics.throughput_tps;
                Some((size, tput))
            })
            .collect();
        sized.sort_by_key(|(size, _)| *size);
        let Some(&(1, unbatched)) = sized.first() else {
            continue;
        };
        let Some(&(size, batched)) = sized.last() else {
            continue;
        };
        if size == 1 {
            continue; // no batched configuration to compare against
        }
        let delta_pct = if unbatched > 0.0 {
            100.0 * (batched - unbatched) / unbatched
        } else {
            0.0
        };
        out.push((proto.label().to_string(), unbatched, batched, delta_pct));
    }
    out
}

/// One bucket of a fault-injection timeline: the committed throughput and
/// mean latency of the transactions *submitted* during `[t_ms, t_ms +
/// width)`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TimelineBin {
    /// Bucket start (virtual milliseconds since experiment start).
    pub t_ms: f64,
    /// Committed throughput over the bucket (tx/s).
    pub committed_tps: f64,
    /// Mean end-to-end latency of the bucket's committed transactions (ms).
    pub avg_latency_ms: f64,
}

/// One protocol stack's behaviour across a crash-and-recover schedule.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FaultSeries {
    /// Stack label (`-BFT` suffix marks the PBFT-domain variant).
    pub label: String,
    /// When the scripted crash hits (virtual ms).
    pub crash_ms: f64,
    /// When the crashed replica recovers (virtual ms).
    pub recover_ms: f64,
    /// Throughput/latency timeline in submission-time buckets.
    pub timeline: Vec<TimelineBin>,
    /// View changes observed across the deployment (leader crash ⇒ ≥ 1 in
    /// the victim domain).
    pub view_changes: u64,
    /// The run's standard summary metrics (the measurement window spans the
    /// outage, so the dip is folded into these).
    pub metrics: crate::experiment::RunMetrics,
}

/// The replica whose crash the fault figure scripts: the view-0 primary of
/// the first height-1 domain.
pub fn fault_victim() -> NodeId {
    NodeId::new(DomainId::new(1, 0), 0)
}

/// Fault-injection timeline on the figure-7 topology: every stack runs the
/// same crash-and-recover schedule — the view-0 primary of one height-1
/// domain crashes a quarter into the measurement window and recovers at 70 %
/// of it — and reports committed throughput over time.  Paxos domains are
/// exercised by the four crash-model stacks; a fifth series reruns the
/// coordinator stack over Byzantine domains so the PBFT view change is
/// driven too, and a sixth runs an 80 %-mobile workload so the crash lands
/// on a domain that is mid-`StateQuery`/`StateMsg` hand-offs.
pub fn faults(options: &FigureOptions) -> Vec<FaultSeries> {
    let load = if options.quick { 1_200.0 } else { 4_000.0 };
    let entries: Vec<(String, ExperimentSpec, Duration, Duration)> = ProtocolKind::ALL
        .iter()
        .map(|proto| (proto.label().to_string(), spec(*proto, options).load(load)))
        .chain(std::iter::once((
            "Coordinator-BFT".to_string(),
            spec(ProtocolKind::SaguaroCoordinator, options)
                .byzantine()
                .load(load),
        )))
        .chain(std::iter::once((
            "Coordinator-Mobile".to_string(),
            spec(ProtocolKind::SaguaroCoordinator, options)
                .mobile(0.8)
                .load(load),
        )))
        .map(|(label, s)| {
            // Computed once and carried with the entry so the scheduled
            // instants and the reported crash_ms/recover_ms can never drift
            // apart.
            let crash_at = s.warmup + Duration::from_micros(s.measure.as_micros() / 4);
            let recover_at = s.warmup + Duration::from_micros(s.measure.as_micros() * 7 / 10);
            let plan = FaultSchedule::none()
                .crash_at(SimTime::ZERO + crash_at, fault_victim())
                .recover_at(SimTime::ZERO + recover_at, fault_victim());
            (label, s.fault_plan(plan), crash_at, recover_at)
        })
        .collect();
    let artifacts = parallel_map(&entries, |(_, s, _, _)| s.run_collecting());
    entries
        .into_iter()
        .zip(artifacts)
        .map(|((label, s, crash_at, recover_at), art)| FaultSeries {
            label,
            crash_ms: crash_at.as_millis_f64(),
            recover_ms: recover_at.as_millis_f64(),
            timeline: timeline_bins(&art.completions, s.warmup + s.measure, s.measure),
            view_changes: art.harvest.view_changes(),
            metrics: art.metrics,
        })
        .collect()
}

/// Buckets completions by submission time over `[0, horizon)` into twelve
/// bins per measurement window.
fn timeline_bins(
    completions: &[crate::client::CompletedTx],
    horizon: Duration,
    measure: Duration,
) -> Vec<TimelineBin> {
    let width = (measure.as_micros() / 12).max(1);
    let bins = horizon.as_micros().div_ceil(width) as usize;
    let mut committed = vec![0u64; bins];
    let mut lat_sum = vec![0.0f64; bins];
    for c in completions {
        let idx = (c.submitted_at.as_micros() / width) as usize;
        if idx < bins && c.committed {
            committed[idx] += 1;
            lat_sum[idx] += c.latency.as_millis_f64();
        }
    }
    let width_secs = width as f64 / 1_000_000.0;
    (0..bins)
        .map(|i| TimelineBin {
            t_ms: (i as u64 * width) as f64 / 1_000.0,
            committed_tps: committed[i] as f64 / width_secs,
            avg_latency_ms: if committed[i] > 0 {
                lat_sum[i] / committed[i] as f64
            } else {
                0.0
            },
        })
        .collect()
}

/// Renders fault-timeline series as a plain-text table.
pub fn render_fault_table(title: &str, series: &[FaultSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    for s in series {
        out.push_str(&format!(
            "{} — crash {:.0} ms, recover {:.0} ms, view changes {}, \
             window throughput {:.0} tx/s\n",
            s.label, s.crash_ms, s.recover_ms, s.view_changes, s.metrics.throughput_tps
        ));
        out.push_str(&format!(
            "{:>10} {:>14} {:>12}\n",
            "t_ms", "committed_tps", "avg_lat_ms"
        ));
        for b in &s.timeline {
            out.push_str(&format!(
                "{:>10.0} {:>14.0} {:>12.2}\n",
                b.t_ms, b.committed_tps, b.avg_latency_ms
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Recovery figure: catch-up time and transfer volume vs outage length
// ---------------------------------------------------------------------------

/// One outage length of the recovery figure.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RecoveryPoint {
    /// How long the victim replica was down (virtual ms).
    pub outage_ms: f64,
    /// Catch-up time: from the scripted recovery instant to the victim's
    /// last applied state-transfer reply (virtual ms).  `-1` when the victim
    /// never caught up (a regression the binary asserts against).
    pub recovery_ms: f64,
    /// Member commands the victim received through state transfer.
    pub transferred_commands: u64,
    /// Wire bytes of the state-transfer replies the victim applied.
    pub transferred_bytes: u64,
    /// Delivery frontier the victim reached by the end of the run.
    pub victim_frontier: u64,
    /// Delivery frontier of a healthy replica of the same domain.
    pub healthy_frontier: u64,
    /// Entries a view-change vote from the healthy replica would carry
    /// (bounded by the stable checkpoint).
    pub vote_entries: usize,
    /// Entries the same vote carried before this subsystem existed — the
    /// full history, i.e. the healthy frontier.
    pub vote_entries_unbounded: u64,
    /// The healthy replica's stable checkpoint at run end.
    pub stable_checkpoint: u64,
    /// Standard summary metrics of the run.
    pub metrics: RunMetrics,
}

impl RecoveryPoint {
    /// Modelled wire size of a bounded view-change vote (96-byte header plus
    /// ~264 bytes per carried single-command entry, the Paxos wire model).
    pub fn vote_bytes(&self) -> u64 {
        96 + 264 * self.vote_entries as u64
    }

    /// Modelled wire size the vote would have had without checkpointing.
    pub fn vote_bytes_unbounded(&self) -> u64 {
        96 + 264 * self.vote_entries_unbounded
    }
}

/// One protocol configuration swept over outage lengths.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RecoverySeries {
    /// Series label.
    pub label: String,
    /// Checkpoint announcement interval the series ran with.
    pub checkpoint_interval: u64,
    /// One point per outage length.
    pub points: Vec<RecoveryPoint>,
}

/// The replica whose outage the recovery figure scripts: a *backup* of the
/// first height-1 domain, so the domain keeps committing under its primary
/// while the victim falls behind — pure catch-up, no view change needed.
pub fn recovery_victim() -> NodeId {
    NodeId::new(DomainId::new(1, 0), 1)
}

/// Recovery figure: a backup replica of one height-1 domain crashes and
/// recovers after an increasing outage; with checkpointing active its log
/// gap cannot be filled by re-accepts (the slots are garbage-collected
/// domain-wide), so the measured recovery time is the state-transfer
/// catch-up — and it should scale with the outage length, as should the
/// transferred volume.  One series over Paxos domains, one over PBFT.
pub fn recovery(options: &FigureOptions) -> Vec<RecoverySeries> {
    let outages_ms: Vec<u64> = if options.quick {
        vec![60, 150]
    } else {
        vec![50, 100, 200, 300]
    };
    let interval = 16;
    let load = if options.quick { 1_200.0 } else { 2_400.0 };
    let entries: Vec<(String, ExperimentSpec, u64)> =
        [("Coordinator", false), ("Coordinator-BFT", true)]
            .iter()
            .flat_map(|(label, byzantine)| {
                outages_ms.iter().map(move |outage| {
                    let mut s = spec(ProtocolKind::SaguaroCoordinator, options)
                        .load(load)
                        .tune(|t| t.checkpoint_every(interval));
                    if *byzantine {
                        s = s.byzantine();
                    }
                    let crash_at = s.warmup + Duration::from_micros(s.measure.as_micros() / 4);
                    let recover_at = crash_at + Duration::from_millis(*outage);
                    let plan = FaultSchedule::none()
                        .crash_at(SimTime::ZERO + crash_at, recovery_victim())
                        .recover_at(SimTime::ZERO + recover_at, recovery_victim());
                    (label.to_string(), s.fault_plan(plan), *outage)
                })
            })
            .collect();
    let artifacts = parallel_map(&entries, |(_, s, _)| s.run_collecting());
    let mut series: Vec<RecoverySeries> = Vec::new();
    for ((label, s, outage), art) in entries.into_iter().zip(artifacts) {
        let recover_at = s.warmup
            + Duration::from_micros(s.measure.as_micros() / 4)
            + Duration::from_millis(outage);
        let victim = art
            .harvest
            .node(recovery_victim())
            .expect("victim harvested");
        let healthy = art
            .harvest
            .node(NodeId::new(recovery_victim().domain, 2))
            .expect("healthy peer harvested");
        let recovery_ms = victim
            .caught_up_at
            .map(|t| t.since(SimTime::ZERO + recover_at).as_millis_f64())
            .unwrap_or(-1.0);
        let point = RecoveryPoint {
            outage_ms: outage as f64,
            recovery_ms,
            transferred_commands: victim.state_transfer_commands,
            transferred_bytes: victim.state_transfer_bytes,
            victim_frontier: victim.last_delivered,
            healthy_frontier: healthy.last_delivered,
            vote_entries: healthy.vote_entries,
            vote_entries_unbounded: healthy.last_delivered,
            stable_checkpoint: healthy.stable_checkpoint,
            metrics: art.metrics,
        };
        match series.iter_mut().find(|s| s.label == label) {
            Some(existing) => existing.points.push(point),
            None => series.push(RecoverySeries {
                label,
                checkpoint_interval: interval,
                points: vec![point],
            }),
        }
    }
    series
}

/// Renders recovery series as a plain-text table, including the vote-size
/// bound the checkpoint buys (before/after bytes).
pub fn render_recovery_table(title: &str, series: &[RecoverySeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    for s in series {
        out.push_str(&format!(
            "{} — checkpoint interval {}\n",
            s.label, s.checkpoint_interval
        ));
        out.push_str(&format!(
            "{:>10} {:>12} {:>14} {:>14} {:>12} {:>14} {:>16}\n",
            "outage_ms",
            "recovery_ms",
            "xfer_commands",
            "xfer_bytes",
            "vote_entries",
            "vote_bytes",
            "unbounded_bytes"
        ));
        for p in &s.points {
            out.push_str(&format!(
                "{:>10.0} {:>12.1} {:>14} {:>14} {:>12} {:>14} {:>16}\n",
                p.outage_ms,
                p.recovery_ms,
                p.transferred_commands,
                p.transferred_bytes,
                p.vote_entries,
                p.vote_bytes(),
                p.vote_bytes_unbounded()
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Liveness-timeout sweep: false suspicions vs recovery time
// ---------------------------------------------------------------------------

/// One `(progress_timeout, placement)` cell of the timeout sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TimeoutPoint {
    /// The swept suspicion window (ms).
    pub timeout_ms: f64,
    /// View changes observed in a *failure-free* run with timers armed —
    /// every one of them is a false suspicion.
    pub false_suspicions: u64,
    /// False suspicions per second of measured run time.
    pub false_suspicion_rate: f64,
    /// In the companion *leader-crash* run: time from the crash to the
    /// first commit of a transaction submitted to the *crashed domain*
    /// after it (ms; `-1` when the domain never recovered within the run).
    pub recovery_ms: f64,
    /// Committed throughput of the crash run (the cost of over-suspicion
    /// shows up here too).
    pub crash_run_tps: f64,
}

/// One placement's sweep over suspicion timeouts.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TimeoutSeries {
    /// Placement label (single-region / nearby / wide-area).
    pub label: String,
    /// One point per swept timeout.
    pub points: Vec<TimeoutPoint>,
}

/// Sweeps [`saguaro_types::LivenessConfig::progress_timeout`] against the
/// three placements' RTTs: too small a window fires false suspicions (view
/// changes with no fault anywhere, paid as churn); too large a window slows
/// crash recovery.  Each cell runs twice — failure-free with timers armed
/// (false-suspicion count) and with a scripted leader crash (recovery time).
pub fn timeout_sweep(options: &FigureOptions) -> Vec<TimeoutSeries> {
    use saguaro_types::LivenessConfig;
    let timeouts_ms: Vec<u64> = if options.quick {
        vec![10, 60]
    } else {
        vec![5, 10, 20, 40, 60, 120]
    };
    let placements = [
        ("single-region", Placement::SingleRegion),
        ("nearby-regions", Placement::NearbyRegions),
        ("wide-area", Placement::WideArea),
    ];
    let load = if options.quick { 800.0 } else { 2_000.0 };
    // (placement label, timeout, crash?) grid, flattened for the parallel map.
    let entries: Vec<(String, ExperimentSpec, u64, bool)> = placements
        .iter()
        .flat_map(|(label, placement)| {
            timeouts_ms.iter().flat_map(move |timeout| {
                [false, true].into_iter().map(move |crash| {
                    let mut s = spec(ProtocolKind::SaguaroCoordinator, options)
                        .placed(*placement)
                        .load(load)
                        .tune(|t| {
                            t.liveness(LivenessConfig::with_timeout(Duration::from_millis(
                                *timeout,
                            )))
                        });
                    if crash {
                        let crash_at = s.warmup + Duration::from_micros(s.measure.as_micros() / 4);
                        s = s.fault_plan(
                            FaultSchedule::none()
                                .crash_at(SimTime::ZERO + crash_at, fault_victim()),
                        );
                    }
                    (label.to_string(), s, *timeout, crash)
                })
            })
        })
        .collect();
    let artifacts = parallel_map(&entries, |(_, s, _, _)| s.run_collecting());
    let mut series: Vec<TimeoutSeries> = placements
        .iter()
        .map(|(label, _)| TimeoutSeries {
            label: label.to_string(),
            points: Vec::new(),
        })
        .collect();
    // Entries come in (placement, timeout, [free, crash]) order.
    for chunk in entries.iter().zip(artifacts).collect::<Vec<_>>().chunks(2) {
        let ((label, s, timeout, crash_a), free_art) = &chunk[0];
        let ((_, _, _, crash_b), crash_art) = &chunk[1];
        debug_assert!(!*crash_a && *crash_b);
        let crash_at = s.warmup + Duration::from_micros(s.measure.as_micros() / 4);
        // Only the crashed domain's own clients measure its recovery: the
        // three healthy domains answer throughout.  Clients are assigned
        // round-robin over the four edge domains, and the scripted victim is
        // the domain-0 primary.
        let victim_domain_client = |c: &crate::client::CompletedTx| c.client.0.is_multiple_of(4);
        let recovery_ms = crash_art
            .completions
            .iter()
            .filter(|c| {
                c.committed && victim_domain_client(c) && c.submitted_at >= SimTime::ZERO + crash_at
            })
            .map(|c| (c.submitted_at + c.latency).since(SimTime::ZERO + crash_at))
            .min()
            .map(|d| d.as_millis_f64())
            .unwrap_or(-1.0);
        let point = TimeoutPoint {
            timeout_ms: *timeout as f64,
            false_suspicions: free_art.harvest.view_changes(),
            false_suspicion_rate: free_art.harvest.view_changes() as f64 / s.measure.as_secs_f64(),
            recovery_ms,
            crash_run_tps: crash_art.metrics.throughput_tps,
        };
        series
            .iter_mut()
            .find(|ts| ts.label == *label)
            .expect("placement series exists")
            .points
            .push(point);
    }
    series
}

/// Renders the timeout sweep as a plain-text table.
pub fn render_timeout_table(title: &str, series: &[TimeoutSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    for s in series {
        out.push_str(&format!("{}\n", s.label));
        out.push_str(&format!(
            "{:>11} {:>17} {:>20} {:>12} {:>14}\n",
            "timeout_ms", "false_suspicions", "false_susp_per_sec", "recovery_ms", "crash_tps"
        ));
        for p in &s.points {
            out.push_str(&format!(
                "{:>11.0} {:>17} {:>20.2} {:>12.1} {:>14.0}\n",
                p.timeout_ms,
                p.false_suspicions,
                p.false_suspicion_rate,
                p.recovery_ms,
                p.crash_run_tps
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Population-scale load generation: aggregate clients over wide topologies
// ---------------------------------------------------------------------------

/// One modeled-population size of the population-scale sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PopulationPoint {
    /// Modeled users across the whole deployment.
    pub users: u64,
    /// Height-1 domains of the (2, fanout) topology the point ran on.
    pub domains: usize,
    /// Throughput / latency quantiles as reported by the streaming
    /// histograms (same [`crate::experiment::RunMetrics`] shape as every
    /// other figure).
    pub metrics: crate::experiment::RunMetrics,
    /// Transactions the aggregate clients submitted (open loop, so this can
    /// exceed `committed` when the system saturates).
    pub submitted: u64,
    /// Completed transactions whose latency was recorded in the histograms.
    pub sampled: u64,
    /// High-water mark of the client-side in-flight map — the only
    /// per-transaction state the aggregate model keeps.  O(1) in the
    /// transaction count by construction; the `population` binary enforces
    /// it.
    pub peak_inflight: u64,
    /// High-water mark of the simulator's event queue.
    pub peak_pending_events: u64,
    /// Total events the simulator processed for this point.
    pub events_processed: u64,
    /// Events per committed transaction (engine cost per unit of work).
    pub events_per_tx: f64,
    /// Wall-clock time of the run (host milliseconds, not virtual time).
    pub wall_ms: f64,
    /// Resident set size after the run (`VmRSS`, KiB; 0 where unavailable).
    pub resident_kb: u64,
}

/// The `(users, fanout)` grid of the population sweep: modeled users grow
/// 10³ → 10⁵ (10⁶ in full mode) while the topology widens to 128 height-1
/// domains, so the largest points stress both the aggregate arrival
/// processes and wide fan-out deployment.
pub fn population_grid(quick: bool) -> Vec<(u64, usize)> {
    let mut grid = vec![(1_000, 16), (10_000, 64), (100_000, 128)];
    if !quick {
        grid.push((1_000_000, 128));
    }
    grid
}

/// Population-scale sweep: one aggregate-client run per
/// [`population_grid`] cell, reporting throughput, streaming-histogram
/// latency quantiles and engine cost.  Points run sequentially — unlike the
/// figure sweeps there is no parallel fan-out here, because each point's
/// wall-clock and resident-set measurements must not include neighbours.
pub fn population(options: &FigureOptions) -> Vec<PopulationPoint> {
    population_grid(options.quick)
        .into_iter()
        .map(|(users, fanout)| population_point(users, fanout, options))
        .collect()
}

fn population_point(users: u64, fanout: usize, options: &FigureOptions) -> PopulationPoint {
    let s = spec(ProtocolKind::SaguaroCoordinator, options)
        .shaped(2, fanout)
        .aggregate(PopulationConfig::with_users(users));
    let started = std::time::Instant::now();
    let art = s.run_collecting();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let tally = art
        .population
        .expect("aggregate runs always carry a population tally");
    let events_per_tx = if art.metrics.committed > 0 {
        art.events_processed as f64 / art.metrics.committed as f64
    } else {
        0.0
    };
    PopulationPoint {
        users,
        domains: fanout,
        metrics: art.metrics,
        submitted: tally.submitted,
        sampled: tally.sampled,
        peak_inflight: tally.peak_inflight as u64,
        peak_pending_events: art.peak_pending_events,
        events_processed: art.events_processed,
        events_per_tx,
        wall_ms,
        resident_kb: resident_kb(),
    }
}

/// Current resident set size in KiB (`VmRSS` from `/proc/self/status`);
/// 0 on platforms without procfs.
pub fn resident_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmRSS:")?
                    .trim()
                    .strip_suffix("kB")?
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Renders the population sweep as a plain-text table.
pub fn render_population_table(title: &str, points: &[PopulationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:>9} {:>8} {:>12} {:>14} {:>10} {:>10} {:>10} {:>13} {:>12} {:>10} {:>9}\n",
        "users",
        "domains",
        "offered_tps",
        "throughput_tps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "events_per_tx",
        "peak_inflight",
        "wall_ms",
        "rss_mb"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>9} {:>8} {:>12.0} {:>14.0} {:>10.3} {:>10.3} {:>10.3} {:>13.1} {:>12} {:>10.0} {:>9.0}\n",
            p.users,
            p.domains,
            p.metrics.offered_tps,
            p.metrics.throughput_tps,
            p.metrics.p50_latency_ms,
            p.metrics.p95_latency_ms,
            p.metrics.p99_latency_ms,
            p.events_per_tx,
            p.peak_inflight,
            p.wall_ms,
            p.resident_kb as f64 / 1024.0
        ));
    }
    out
}

/// Workload comparison: the micropayment and ridesharing applications under
/// the same protocol stack and engine.  Not a paper figure — it demonstrates
/// the `Workload` extension point and sanity-checks that application choice,
/// not the engine, drives the numbers.
pub fn workload_comparison(options: &FigureOptions) -> Vec<FigureSeries> {
    let base = spec(ProtocolKind::SaguaroCoordinator, options);
    let entries = vec![
        ("micropayment".to_string(), base.clone()),
        (
            "ridesharing".to_string(),
            base.ridesharing(RidesharingConfig::default()),
        ),
    ];
    sweep_series(entries, &options.loads)
}

/// Renders a set of series as a plain-text table (one row per load point).
pub fn render_table(title: &str, series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:<22} {:>12} {:>14} {:>12} {:>12} {:>10}\n",
        "series", "offered_tps", "throughput_tps", "avg_lat_ms", "p95_lat_ms", "aborted"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{:<22} {:>12.0} {:>14.0} {:>12.2} {:>12.2} {:>10}\n",
                s.label,
                p.offered_tps,
                p.metrics.throughput_tps,
                p.metrics.avg_latency_ms,
                p.metrics.p95_latency_ms,
                p.metrics.aborted
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_figure7_has_six_series() {
        let series = figure7(0.2, &FigureOptions::smoke());
        assert_eq!(series.len(), 6);
        assert!(series.iter().all(|s| s.points.len() == 2));
        let table = render_table("fig7a", &series);
        assert!(table.contains("Coordinator") && table.contains("AHL"));
    }

    #[test]
    fn smoke_mobile_figure_has_four_series() {
        let series = figure9(FailureModel::Crash, &FigureOptions::smoke());
        assert_eq!(series.len(), 4);
        assert!(series.iter().any(|s| s.label == "100%Mobile"));
    }

    #[test]
    fn batch_delta_reads_the_highest_load_point() {
        // Synthetic series: no simulator runs needed to pin the arithmetic.
        let series_for = |label: &str, tput: f64| FigureSeries {
            label: label.to_string(),
            points: vec![
                LoadPoint {
                    offered_tps: 100.0,
                    metrics: crate::experiment::RunMetrics {
                        throughput_tps: 1.0,
                        ..Default::default()
                    },
                },
                LoadPoint {
                    offered_tps: 200.0,
                    metrics: crate::experiment::RunMetrics {
                        throughput_tps: tput,
                        ..Default::default()
                    },
                },
            ],
        };
        let mut series = Vec::new();
        for proto in ProtocolKind::ALL {
            series.push(series_for(&format!("{} b=1", proto.label()), 100.0));
            series.push(series_for(&format!("{} b=8", proto.label()), 120.0));
            // The largest batch size wins the comparison even when a smaller
            // one happens to measure faster — the delta must describe the
            // documented configuration, not the best of N.
            series.push(series_for(&format!("{} b=16", proto.label()), 110.0));
        }
        let deltas = batch_throughput_delta(&series);
        assert_eq!(deltas.len(), 4);
        for (label, unbatched, batched, pct) in deltas {
            assert!(!label.is_empty());
            assert_eq!(unbatched, 100.0);
            assert_eq!(batched, 110.0);
            assert!((pct - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn population_grid_reaches_a_hundred_plus_domains() {
        let quick = population_grid(true);
        assert!(
            quick
                .iter()
                .any(|(users, domains)| *users == 100_000 && *domains >= 100),
            "quick mode must still cover the 10^5-user, 100+-domain point"
        );
        let full = population_grid(false);
        assert!(full.iter().any(|(users, _)| *users == 1_000_000));
        assert!(full.len() > quick.len());
    }

    #[test]
    fn population_smoke_point_reports_engine_cost() {
        let options = FigureOptions::smoke();
        let point = population_point(2_000, 8, &options);
        assert_eq!(point.users, 2_000);
        assert_eq!(point.domains, 8);
        assert!(point.metrics.committed > 0);
        assert!(point.events_per_tx > 0.0);
        assert!(point.peak_pending_events > 0);
        assert!(point.submitted >= point.metrics.committed);
        let table = render_population_table("population", &[point]);
        assert!(table.contains("events_per_tx"));
    }

    #[test]
    fn batch_ablation_grids_cover_both_modes() {
        let (loads, sizes) = batch_ablation_grid(true);
        assert_eq!(sizes, vec![1, 8]);
        assert_eq!(loads.len(), 1);
        let (loads, sizes) = batch_ablation_grid(false);
        assert!(sizes.contains(&1) && sizes.contains(&8));
        assert!(loads.len() >= 2);
    }
}
