//! Ready-made experiment grids reproducing every figure of the paper's
//! evaluation (Figures 7–13) plus the ablations called out in `DESIGN.md`.
//!
//! Each `figure*` function returns one [`FigureSeries`] per curve of the
//! corresponding figure; the `saguaro-bench` binaries print them as tables
//! and `EXPERIMENTS.md` records the paper-vs-measured comparison.

use crate::experiment::{sweep, ExperimentSpec, LoadPoint, RidesharingConfig};
use crate::protocol::ProtocolKind;
use saguaro_hierarchy::Placement;
use saguaro_types::FailureModel;

/// One curve of a figure: a label plus its load sweep.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FigureSeries {
    /// Curve label as it appears in the paper's legend.
    pub label: String,
    /// Measured points.
    pub points: Vec<LoadPoint>,
}

/// Options controlling how exhaustively the figures are regenerated.
#[derive(Clone, Debug)]
pub struct FigureOptions {
    /// Offered loads to sweep (tx/s).
    pub loads: Vec<f64>,
    /// Use the abbreviated measurement windows (CI / smoke runs).
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FigureOptions {
    fn default() -> Self {
        Self {
            loads: vec![1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0],
            quick: false,
            seed: 42,
        }
    }
}

impl FigureOptions {
    /// A fast configuration for tests and Criterion benches.
    pub fn smoke() -> Self {
        Self {
            loads: vec![600.0, 1_200.0],
            quick: true,
            seed: 42,
        }
    }
}

fn spec(protocol: ProtocolKind, options: &FigureOptions) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(protocol);
    s.seed = options.seed;
    if options.quick {
        s = s.quick();
    }
    s
}

/// The six curves every cross-domain figure plots: AHL, SharPer, the
/// coordinator-based protocol and the optimistic protocol at 10 / 50 / 90 %
/// contention.
fn cross_domain_curves(
    options: &FigureOptions,
    configure: impl Fn(ExperimentSpec) -> ExperimentSpec,
) -> Vec<FigureSeries> {
    let mut out = Vec::new();
    let protos = [
        (ProtocolKind::Ahl, "AHL", None),
        (ProtocolKind::Sharper, "SharPer", None),
        (ProtocolKind::SaguaroCoordinator, "Coordinator", None),
        (ProtocolKind::SaguaroOptimistic, "Opt-10%C", Some(0.10)),
        (ProtocolKind::SaguaroOptimistic, "Opt-50%C", Some(0.50)),
        (ProtocolKind::SaguaroOptimistic, "Opt-90%C", Some(0.90)),
    ];
    for (proto, label, contention) in protos {
        let mut s = configure(spec(proto, options));
        if let Some(c) = contention {
            s = s.contention(c);
        }
        out.push(FigureSeries {
            label: label.to_string(),
            points: sweep(&s, &options.loads),
        });
    }
    out
}

/// Figure 7: cross-domain transactions, crash-only domains, nearby regions.
/// `cross_pct` selects the sub-figure: 0.2 (a), 0.8 (b) or 1.0 (c).
pub fn figure7(cross_pct: f64, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| s.cross_domain(cross_pct))
}

/// Figure 8: cross-domain transactions, Byzantine domains, nearby regions.
pub fn figure8(cross_pct: f64, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| s.byzantine().cross_domain(cross_pct))
}

/// Figures 9 (nearby) and 11 (wide area): transactions initiated by mobile
/// devices, one curve per mobile percentage.
pub fn figure_mobile(
    placement: Placement,
    model: FailureModel,
    options: &FigureOptions,
) -> Vec<FigureSeries> {
    [0.0, 0.2, 0.8, 1.0]
        .iter()
        .map(|mobile| {
            let mut s = spec(ProtocolKind::SaguaroCoordinator, options)
                .placed(placement)
                .mobile(*mobile);
            if model == FailureModel::Byzantine {
                s = s.byzantine();
            }
            FigureSeries {
                label: format!("{}%Mobile", (mobile * 100.0) as u32),
                points: sweep(&s, &options.loads),
            }
        })
        .collect()
}

/// Figure 9: mobile devices over nearby regions.
pub fn figure9(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    figure_mobile(Placement::NearbyRegions, model, options)
}

/// Figure 10: scalability over wide-area domains (90 % internal / 10 %
/// cross-domain, seven far-apart regions).
pub fn figure10(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| {
        let s = s.placed(Placement::WideArea).cross_domain(0.10);
        if model == FailureModel::Byzantine {
            s.byzantine()
        } else {
            s
        }
    })
}

/// Figure 11: mobile devices over the wide-area placement.
pub fn figure11(model: FailureModel, options: &FigureOptions) -> Vec<FigureSeries> {
    figure_mobile(Placement::WideArea, model, options)
}

/// Figures 12 and 13: fault-tolerance scalability — all protocols, single
/// region, 90/10 workload, larger domains (`f` = 2 or 4).
pub fn figure_ft(model: FailureModel, faults: usize, options: &FigureOptions) -> Vec<FigureSeries> {
    cross_domain_curves(options, |s| {
        let s = s
            .placed(Placement::SingleRegion)
            .cross_domain(0.10)
            .with_faults(faults);
        if model == FailureModel::Byzantine {
            s.byzantine()
        } else {
            s
        }
    })
}

/// Ablation: LCA coordinator versus a fixed root coordinator.  The AHL
/// baseline *is* the fixed-root configuration over the same substrate, so the
/// ablation compares `Coordinator` against `AHL` at 100 % cross-domain.
pub fn ablation_lca_vs_root(options: &FigureOptions) -> Vec<FigureSeries> {
    [
        (ProtocolKind::SaguaroCoordinator, "LCA coordinator"),
        (ProtocolKind::Ahl, "Fixed root coordinator"),
    ]
    .iter()
    .map(|(proto, label)| FigureSeries {
        label: label.to_string(),
        points: sweep(&spec(*proto, options).cross_domain(1.0), &options.loads),
    })
    .collect()
}

/// Ablation: how the contention knob affects the optimistic protocol's abort
/// behaviour (complement of the Opt-x%C curves).
pub fn ablation_contention(options: &FigureOptions) -> Vec<FigureSeries> {
    [0.1, 0.5, 0.9]
        .iter()
        .map(|c| FigureSeries {
            label: format!("contention {}%", (c * 100.0) as u32),
            points: sweep(
                &spec(ProtocolKind::SaguaroOptimistic, options)
                    .cross_domain(0.8)
                    .contention(*c),
                &options.loads,
            ),
        })
        .collect()
}

/// Workload comparison: the micropayment and ridesharing applications under
/// the same protocol stack and engine.  Not a paper figure — it demonstrates
/// the `Workload` extension point and sanity-checks that application choice,
/// not the engine, drives the numbers.
pub fn workload_comparison(options: &FigureOptions) -> Vec<FigureSeries> {
    let base = spec(ProtocolKind::SaguaroCoordinator, options);
    [
        ("micropayment", base.clone()),
        (
            "ridesharing",
            base.ridesharing(RidesharingConfig::default()),
        ),
    ]
    .into_iter()
    .map(|(label, s)| FigureSeries {
        label: label.to_string(),
        points: sweep(&s, &options.loads),
    })
    .collect()
}

/// Renders a set of series as a plain-text table (one row per load point).
pub fn render_table(title: &str, series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:<22} {:>12} {:>14} {:>12} {:>12} {:>10}\n",
        "series", "offered_tps", "throughput_tps", "avg_lat_ms", "p95_lat_ms", "aborted"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{:<22} {:>12.0} {:>14.0} {:>12.2} {:>12.2} {:>10}\n",
                s.label,
                p.offered_tps,
                p.metrics.throughput_tps,
                p.metrics.avg_latency_ms,
                p.metrics.p95_latency_ms,
                p.metrics.aborted
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_figure7_has_six_series() {
        let series = figure7(0.2, &FigureOptions::smoke());
        assert_eq!(series.len(), 6);
        assert!(series.iter().all(|s| s.points.len() == 2));
        let table = render_table("fig7a", &series);
        assert!(table.contains("Coordinator") && table.contains("AHL"));
    }

    #[test]
    fn smoke_mobile_figure_has_four_series() {
        let series = figure9(FailureModel::Crash, &FigureOptions::smoke());
        assert_eq!(series.len(), 4);
        assert!(series.iter().any(|s| s.label == "100%Mobile"));
    }
}
