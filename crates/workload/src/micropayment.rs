//! The micropayment workload used by every quantitative experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saguaro_types::transaction::account_key;
use saguaro_types::{ClientId, DomainId, Operation, Transaction, TxId};

/// Knobs of the micropayment workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// The height-1 domains of the deployment (request targets).
    pub edge_domains: Vec<DomainId>,
    /// Accounts seeded per domain.
    pub accounts_per_domain: u64,
    /// Initial balance of every account.
    pub initial_balance: u64,
    /// Fraction of transactions that involve two distinct domains.
    pub cross_domain_ratio: f64,
    /// Fraction of transactions drawn from the hot (contended) account set.
    pub contention_ratio: f64,
    /// Size of the hot account set per domain.
    pub hot_accounts: u64,
    /// Fraction of clients that are mobile (issue requests from a remote
    /// domain).
    pub mobile_ratio: f64,
    /// Number of transactions a mobile client issues per remote excursion
    /// before returning home (the paper uses 10).
    pub txs_per_excursion: u32,
    /// Transfer amount.
    pub amount: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            edge_domains: (0..4).map(|i| DomainId::new(1, i)).collect(),
            accounts_per_domain: 10_000,
            initial_balance: 1_000_000,
            cross_domain_ratio: 0.0,
            contention_ratio: 0.10,
            hot_accounts: 16,
            mobile_ratio: 0.0,
            txs_per_excursion: 10,
            amount: 5,
        }
    }
}

impl WorkloadConfig {
    /// All `(account key, initial balance)` pairs a domain must be seeded
    /// with before the run.
    pub fn seed_accounts_for(&self, domain: DomainId) -> Vec<(String, u64)> {
        (0..self.accounts_per_domain)
            .map(|n| (account_key(domain.index, n), self.initial_balance))
            .collect()
    }
}

/// Per-client state of the mobility model.
#[derive(Clone, Debug)]
struct ClientState {
    home: DomainId,
    mobile: bool,
    /// Remote domain of the current excursion, if any.
    visiting: Option<DomainId>,
    /// Transactions left in the current excursion.
    remaining_in_excursion: u32,
}

/// Deterministic micropayment transaction generator.
///
/// One generator instance drives one logical client population; each call to
/// [`MicropaymentWorkload::next_for_client`] produces the next transaction a
/// given client issues (and tracks its mobility excursions).
#[derive(Clone, Debug)]
pub struct MicropaymentWorkload {
    config: WorkloadConfig,
    rng: StdRng,
    next_tx_id: u64,
    clients: Vec<ClientState>,
}

impl MicropaymentWorkload {
    /// Creates a generator for `num_clients` clients spread round-robin over
    /// the edge domains.
    pub fn new(config: WorkloadConfig, num_clients: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clients = (0..num_clients)
            .map(|i| {
                let home = config.edge_domains[i % config.edge_domains.len()];
                let mobile = rng.gen_bool(config.mobile_ratio);
                ClientState {
                    home,
                    mobile,
                    visiting: None,
                    remaining_in_excursion: 0,
                }
            })
            .collect();
        Self {
            config,
            rng,
            next_tx_id: 1,
            clients,
        }
    }

    /// Number of clients in the population.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The home domain of a client.
    pub fn home_of(&self, client: usize) -> DomainId {
        self.clients[client % self.clients.len()].home
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn pick_account(&mut self, domain: DomainId, hot: bool) -> String {
        let n = if hot {
            self.rng.gen_range(0..self.config.hot_accounts.max(1))
        } else {
            self.rng
                .gen_range(0..self.config.accounts_per_domain.max(1))
        };
        account_key(domain.index, n)
    }

    fn other_domain(&mut self, not: DomainId) -> DomainId {
        let candidates: Vec<DomainId> = self
            .config
            .edge_domains
            .iter()
            .copied()
            .filter(|d| *d != not)
            .collect();
        if candidates.is_empty() {
            not
        } else {
            candidates[self.rng.gen_range(0..candidates.len())]
        }
    }

    /// Generates the next transaction for client `client_index`.  Returns the
    /// transaction together with the domain it should be submitted to (the
    /// client's home domain, or the remote domain it is currently visiting).
    pub fn next_for_client(&mut self, client_index: usize) -> (Transaction, DomainId) {
        let idx = client_index % self.clients.len();
        let id = TxId(self.next_tx_id);
        self.next_tx_id += 1;
        let client_id = ClientId(client_index as u64);
        let home = self.clients[idx].home;

        // Mobility: mobile clients alternate excursions of
        // `txs_per_excursion` remote transactions with a return home.
        let (submit_to, is_remote) = if self.clients[idx].mobile {
            if self.clients[idx].remaining_in_excursion == 0 {
                let remote = self.other_domain(home);
                self.clients[idx].visiting = Some(remote);
                self.clients[idx].remaining_in_excursion = self.config.txs_per_excursion;
            }
            self.clients[idx].remaining_in_excursion -= 1;
            let visiting = self.clients[idx].visiting.unwrap_or(home);
            (visiting, visiting != home)
        } else {
            (home, false)
        };

        let hot = self.rng.gen_bool(self.config.contention_ratio);
        let cross = !is_remote && self.rng.gen_bool(self.config.cross_domain_ratio);

        let tx = if is_remote {
            // Mobile transaction: the device spends from its own (home)
            // account while visiting `submit_to`.
            let from = saguaro_types::transaction::account_key(home.index, client_id.0);
            let to = self.pick_account(submit_to, hot);
            Transaction::mobile(
                id,
                client_id,
                home,
                submit_to,
                Operation::Transfer {
                    from,
                    to,
                    amount: self.config.amount,
                },
            )
        } else if cross {
            let other = self.other_domain(home);
            let from = self.pick_account(home, hot);
            let to = self.pick_account(other, hot);
            Transaction::cross_domain(
                id,
                client_id,
                vec![home, other],
                Operation::Transfer {
                    from,
                    to,
                    amount: self.config.amount,
                },
            )
        } else {
            let from = self.pick_account(home, hot);
            let mut to = self.pick_account(home, hot);
            if to == from {
                to = self.pick_account(home, false);
            }
            Transaction::internal(
                id,
                client_id,
                home,
                Operation::Transfer {
                    from,
                    to,
                    amount: self.config.amount,
                },
            )
        };
        (tx, submit_to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domains(n: u16) -> Vec<DomainId> {
        (0..n).map(|i| DomainId::new(1, i)).collect()
    }

    fn workload(cross: f64, mobile: f64) -> MicropaymentWorkload {
        let config = WorkloadConfig {
            edge_domains: domains(4),
            cross_domain_ratio: cross,
            mobile_ratio: mobile,
            ..WorkloadConfig::default()
        };
        MicropaymentWorkload::new(config, 100, 42)
    }

    #[test]
    fn internal_only_workload_produces_internal_transactions() {
        let mut w = workload(0.0, 0.0);
        for i in 0..200 {
            let (tx, submit_to) = w.next_for_client(i % 100);
            assert!(!tx.kind.is_cross_domain(), "{tx:?}");
            assert_eq!(submit_to, w.home_of(i % 100));
        }
    }

    #[test]
    fn cross_domain_ratio_is_respected_statistically() {
        let mut w = workload(0.8, 0.0);
        let total = 2_000;
        let cross = (0..total)
            .filter(|i| w.next_for_client(i % 100).0.kind.is_cross_domain())
            .count();
        let ratio = cross as f64 / total as f64;
        assert!((0.72..0.88).contains(&ratio), "observed {ratio}");
    }

    #[test]
    fn cross_domain_transactions_involve_two_distinct_domains() {
        let mut w = workload(1.0, 0.0);
        for i in 0..200 {
            let (tx, _) = w.next_for_client(i % 100);
            let involved = tx.involved_domains();
            assert_eq!(involved.len(), 2);
            assert_ne!(involved[0], involved[1]);
        }
    }

    #[test]
    fn mobile_clients_issue_excursions_of_ten() {
        let config = WorkloadConfig {
            edge_domains: domains(4),
            mobile_ratio: 1.0,
            txs_per_excursion: 10,
            ..WorkloadConfig::default()
        };
        let mut w = MicropaymentWorkload::new(config, 10, 7);
        // Client 3: the first ten transactions go to one remote domain.
        let first: Vec<DomainId> = (0..10).map(|_| w.next_for_client(3).1).collect();
        assert!(first.iter().all(|d| *d == first[0]));
        assert_ne!(first[0], w.home_of(3));
        // All of them are mobile transactions.
        let (tx, _) = w.next_for_client(3);
        assert!(tx.kind.is_mobile());
    }

    #[test]
    fn non_mobile_workload_has_no_mobile_transactions() {
        let mut w = workload(0.5, 0.0);
        assert!((0..500).all(|i| !w.next_for_client(i % 100).0.kind.is_mobile()));
    }

    #[test]
    fn contention_concentrates_accounts() {
        let config = WorkloadConfig {
            edge_domains: domains(1),
            contention_ratio: 0.9,
            hot_accounts: 4,
            ..WorkloadConfig::default()
        };
        let mut w = MicropaymentWorkload::new(config, 10, 3);
        let mut hot_hits = 0;
        let total = 1_000;
        for i in 0..total {
            let (tx, _) = w.next_for_client(i % 10);
            if let Operation::Transfer { from, .. } = &tx.op {
                let n: u64 = from.split('_').nth(1).unwrap().parse().unwrap();
                if n < 4 {
                    hot_hits += 1;
                }
            }
        }
        assert!(hot_hits > total / 2, "hot hits {hot_hits}");
    }

    #[test]
    fn seed_accounts_cover_the_domain() {
        let config = WorkloadConfig {
            accounts_per_domain: 5,
            initial_balance: 77,
            ..WorkloadConfig::default()
        };
        let seeds = config.seed_accounts_for(DomainId::new(1, 2));
        assert_eq!(seeds.len(), 5);
        assert!(seeds.iter().all(|(k, v)| k.starts_with("a2_") && *v == 77));
    }

    #[test]
    fn tx_ids_are_unique_and_increasing() {
        let mut w = workload(0.5, 0.2);
        let ids: Vec<u64> = (0..100).map(|i| w.next_for_client(i).0.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = workload(0.5, 0.3);
        let mut b = workload(0.5, 0.3);
        for i in 0..50 {
            assert_eq!(a.next_for_client(i).0, b.next_for_client(i).0);
        }
    }
}
