//! Workload generators for the Saguaro experiments.
//!
//! The paper evaluates with a micropayment application: "clients continuously
//! carry out transactions that lead to the transfer of financial assets from
//! a sender to a recipient".  The generator controls the knobs the evaluation
//! sweeps:
//!
//! * **cross-domain percentage** — 0 / 10 / 20 / 80 / 100 % of transactions
//!   involve two randomly chosen height-1 domains (Figures 7, 8, 10, 12, 13);
//! * **contention percentage** — 10 / 50 / 90 % of transactions touch a small
//!   hot set of accounts, creating read-write conflicts that stress the
//!   optimistic protocol (Opt-10%C / 50%C / 90%C curves);
//! * **mobile percentage** — 0 / 20 / 80 / 100 % of clients issue their
//!   requests from a remote domain, ten transactions per excursion
//!   (Figures 9 and 11);
//! * the **ridesharing** generator produces `RideTask` records whose
//!   working-hour attribute higher-level domains aggregate (Section 2's gig
//!   economy scenario).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micropayment;
pub mod ridesharing;

pub use micropayment::{MicropaymentWorkload, WorkloadConfig};
pub use ridesharing::RidesharingWorkload;
