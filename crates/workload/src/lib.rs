//! Workload generators for the Saguaro experiments.
//!
//! The paper evaluates with a micropayment application: "clients continuously
//! carry out transactions that lead to the transfer of financial assets from
//! a sender to a recipient".  The generator controls the knobs the evaluation
//! sweeps:
//!
//! * **cross-domain percentage** — 0 / 10 / 20 / 80 / 100 % of transactions
//!   involve two randomly chosen height-1 domains (Figures 7, 8, 10, 12, 13);
//! * **contention percentage** — 10 / 50 / 90 % of transactions touch a small
//!   hot set of accounts, creating read-write conflicts that stress the
//!   optimistic protocol (Opt-10%C / 50%C / 90%C curves);
//! * **mobile percentage** — 0 / 20 / 80 / 100 % of clients issue their
//!   requests from a remote domain, ten transactions per excursion
//!   (Figures 9 and 11);
//! * the **ridesharing** generator produces `RideTask` records whose
//!   working-hour attribute higher-level domains aggregate (Section 2's gig
//!   economy scenario).
//!
//! Both generators implement the [`Workload`] trait, the abstraction the
//! experiment engine (`saguaro-sim`) drives: any type that can say where a
//! client lives, what it submits next, and what must be seeded can ride the
//! same engine — see [`traits`] for the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micropayment;
pub mod ridesharing;
pub mod traits;

pub use micropayment::{MicropaymentWorkload, WorkloadConfig};
pub use ridesharing::RidesharingWorkload;
pub use traits::Workload;
