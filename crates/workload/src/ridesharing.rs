//! The ridesharing / gig-economy workload of the motivation section.
//!
//! Drivers complete rides inside a spatial domain; each ride appends a
//! `RideTask` record whose working-minutes attribute is what higher-level
//! domains aggregate (Fair Labor Standards Act compliance in the paper's
//! example).  A fraction of drivers roam to neighbouring domains, exercising
//! mobile consensus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saguaro_types::{ClientId, DomainId, Operation, Transaction, TxId};

/// Generator of ridesharing tasks.
#[derive(Clone, Debug)]
pub struct RidesharingWorkload {
    edge_domains: Vec<DomainId>,
    drivers_per_domain: u64,
    roaming_ratio: f64,
    rng: StdRng,
    next_tx_id: u64,
}

impl RidesharingWorkload {
    /// Creates a generator.
    pub fn new(
        edge_domains: Vec<DomainId>,
        drivers_per_domain: u64,
        roaming_ratio: f64,
        seed: u64,
    ) -> Self {
        Self {
            edge_domains,
            drivers_per_domain,
            roaming_ratio,
            rng: StdRng::seed_from_u64(seed),
            next_tx_id: 1,
        }
    }

    /// The canonical driver name for domain `home`, driver number `n`.
    pub fn driver_name(home: DomainId, n: u64) -> String {
        format!("driver-{}-{n}", home.index)
    }

    /// Builds one completed ride for `driver_no` of `home`, submitted by
    /// `client`: draws the minutes/fare, decides whether the driver was
    /// roaming, and frames the transaction accordingly.  Shared by
    /// [`Self::next_ride`] and [`Self::next_for_driver`].
    fn make_ride(
        &mut self,
        home: DomainId,
        driver_no: u64,
        client: ClientId,
    ) -> (Transaction, DomainId) {
        let driver = Self::driver_name(home, driver_no);
        let minutes = self.rng.gen_range(5..90);
        let fare = minutes / 2 + self.rng.gen_range(1u64..10);
        let id = TxId(self.next_tx_id);
        self.next_tx_id += 1;
        let op = Operation::RideTask {
            driver,
            minutes,
            fare,
        };
        let roaming = self.roaming_ratio > 0.0
            && self.edge_domains.len() > 1
            && self.rng.gen_bool(self.roaming_ratio);
        if roaming {
            let mut remote = home;
            while remote == home {
                remote = self.edge_domains[self.rng.gen_range(0..self.edge_domains.len())];
            }
            (Transaction::mobile(id, client, home, remote, op), remote)
        } else {
            (Transaction::internal(id, client, home, op), home)
        }
    }

    /// Generates the next completed ride of a random driver.  Returns the
    /// transaction and the domain it is submitted to.
    pub fn next_ride(&mut self) -> (Transaction, DomainId) {
        let home = self.edge_domains[self.rng.gen_range(0..self.edge_domains.len())];
        let driver_no = self.rng.gen_range(0..self.drivers_per_domain);
        let client = ClientId(home.index as u64 * self.drivers_per_domain + driver_no);
        self.make_ride(home, driver_no, client)
    }

    /// Generates a batch of rides.
    pub fn batch(&mut self, n: usize) -> Vec<(Transaction, DomainId)> {
        (0..n).map(|_| self.next_ride()).collect()
    }

    /// The home domain of driver `client` when the generator is driven by the
    /// experiment engine: drivers are spread round-robin over the edge
    /// domains, like micropayment clients.
    pub fn home_of(&self, client: usize) -> DomainId {
        self.edge_domains[client % self.edge_domains.len()]
    }

    /// Generates the next completed ride of a *specific* driver (used when
    /// each experiment client represents one driver).  Unlike [`Self::next_ride`],
    /// the transaction's client id equals `client`, so the engine's reply
    /// routing works.  With probability `roaming_ratio` the ride happens in a
    /// neighbouring domain and is recorded as a mobile transaction.
    pub fn next_for_driver(&mut self, client: usize) -> (Transaction, DomainId) {
        let home = self.home_of(client);
        let driver_no = (client / self.edge_domains.len()) as u64 % self.drivers_per_domain.max(1);
        self.make_ride(home, driver_no, ClientId(client as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domains(n: u16) -> Vec<DomainId> {
        (0..n).map(|i| DomainId::new(1, i)).collect()
    }

    #[test]
    fn rides_are_ride_tasks_with_positive_minutes() {
        let mut w = RidesharingWorkload::new(domains(4), 10, 0.0, 1);
        for (tx, submit_to) in w.batch(100) {
            match &tx.op {
                Operation::RideTask { minutes, .. } => assert!(*minutes > 0),
                other => panic!("unexpected op {other:?}"),
            }
            assert_eq!(tx.involved_domains(), vec![submit_to]);
        }
    }

    #[test]
    fn roaming_rides_are_mobile_transactions() {
        let mut w = RidesharingWorkload::new(domains(4), 10, 1.0, 2);
        let batch = w.batch(50);
        assert!(batch.iter().all(|(tx, _)| tx.kind.is_mobile()));
        for (tx, submit_to) in batch {
            if let saguaro_types::TxKind::Mobile { local, remote } = tx.kind {
                assert_ne!(local, remote);
                assert_eq!(remote, submit_to);
            }
        }
    }

    #[test]
    fn driver_names_encode_home_domain() {
        assert_eq!(
            RidesharingWorkload::driver_name(DomainId::new(1, 3), 7),
            "driver-3-7"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RidesharingWorkload::new(domains(3), 5, 0.3, 9);
        let mut b = RidesharingWorkload::new(domains(3), 5, 0.3, 9);
        assert_eq!(a.batch(20), b.batch(20));
    }

    #[test]
    fn ids_are_unique() {
        let mut w = RidesharingWorkload::new(domains(2), 5, 0.5, 4);
        let ids: Vec<u64> = w.batch(100).iter().map(|(t, _)| t.id.0).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
