//! The [`Workload`] abstraction the experiment engine drives.
//!
//! The engine (`saguaro-sim`) does not know which application it is running:
//! it asks a `Workload` where each client lives, what transaction that client
//! issues next, and which accounts each height-1 domain must be seeded with
//! before the run.  Both generators in this crate implement the trait, so the
//! paper's micropayment evaluation and the motivation section's ridesharing
//! scenario run through the *same* engine (`run_experiment`).
//!
//! To add a new application: implement `Workload` for your generator and add
//! a `WorkloadKind` variant in `saguaro-sim` (or drive `prepare` directly
//! with your generator).

use crate::micropayment::MicropaymentWorkload;
use crate::ridesharing::RidesharingWorkload;
use saguaro_types::transaction::account_key;
use saguaro_types::{DomainId, Transaction};

/// An application driven by the experiment engine's open-loop clients.
///
/// Implementations must be deterministic for a given construction seed: the
/// engine relies on this for reproducible `RunMetrics`.
pub trait Workload {
    /// Short name used in printed tables and labels.
    fn label(&self) -> &'static str;

    /// The home (height-1) domain of client `client`.
    fn home_of(&self, client: usize) -> DomainId;

    /// The next transaction client `client` issues, together with the domain
    /// it submits the request to (normally the home domain; a remote domain
    /// while the client roams).
    fn next_for_client(&mut self, client: usize) -> (Transaction, DomainId);

    /// `(account key, initial balance)` pairs every replica of `domain` must
    /// be seeded with before the run starts.
    fn seed_accounts(&self, domain: DomainId) -> Vec<(String, u64)>;
}

impl Workload for MicropaymentWorkload {
    fn label(&self) -> &'static str {
        "micropayment"
    }

    fn home_of(&self, client: usize) -> DomainId {
        MicropaymentWorkload::home_of(self, client)
    }

    fn next_for_client(&mut self, client: usize) -> (Transaction, DomainId) {
        MicropaymentWorkload::next_for_client(self, client)
    }

    /// The domain's account universe plus one account per client homed there
    /// (mobile transactions spend from the client's own account).
    fn seed_accounts(&self, domain: DomainId) -> Vec<(String, u64)> {
        let config = self.config();
        let mut accounts = config.seed_accounts_for(domain);
        for client in 0..self.num_clients() {
            if MicropaymentWorkload::home_of(self, client) == domain {
                accounts.push((
                    account_key(domain.index, client as u64),
                    config.initial_balance,
                ));
            }
        }
        accounts
    }
}

impl Workload for RidesharingWorkload {
    fn label(&self) -> &'static str {
        "ridesharing"
    }

    fn home_of(&self, client: usize) -> DomainId {
        RidesharingWorkload::home_of(self, client)
    }

    fn next_for_client(&mut self, client: usize) -> (Transaction, DomainId) {
        RidesharingWorkload::next_for_driver(self, client)
    }

    /// Ride tasks accumulate working minutes from zero; no balances needed.
    fn seed_accounts(&self, _domain: DomainId) -> Vec<(String, u64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micropayment::WorkloadConfig;

    fn domains(n: u16) -> Vec<DomainId> {
        (0..n).map(|i| DomainId::new(1, i)).collect()
    }

    #[test]
    fn micropayment_seeds_cover_universe_and_homed_clients() {
        let config = WorkloadConfig {
            edge_domains: domains(4),
            accounts_per_domain: 10,
            initial_balance: 500,
            ..WorkloadConfig::default()
        };
        let w = MicropaymentWorkload::new(config, 8, 1);
        let d0 = DomainId::new(1, 0);
        let seeds = Workload::seed_accounts(&w, d0);
        // 10 universe accounts + 2 of the 8 round-robin clients live in d0.
        assert_eq!(seeds.len(), 12);
        assert!(seeds.iter().all(|(_, v)| *v == 500));
    }

    #[test]
    fn ridesharing_needs_no_seeds_and_maps_clients_round_robin() {
        let w = RidesharingWorkload::new(domains(4), 10, 0.0, 1);
        assert!(Workload::seed_accounts(&w, DomainId::new(1, 0)).is_empty());
        assert_eq!(Workload::home_of(&w, 0), DomainId::new(1, 0));
        assert_eq!(Workload::home_of(&w, 5), DomainId::new(1, 1));
    }

    #[test]
    fn both_workloads_are_usable_as_trait_objects() {
        let mut boxed: Vec<Box<dyn Workload>> = vec![
            Box::new(MicropaymentWorkload::new(
                WorkloadConfig {
                    edge_domains: domains(2),
                    ..WorkloadConfig::default()
                },
                4,
                2,
            )),
            Box::new(RidesharingWorkload::new(domains(2), 4, 0.0, 2)),
        ];
        for w in &mut boxed {
            let home = w.home_of(0);
            let (tx, submit_to) = w.next_for_client(0);
            assert_eq!(submit_to, home);
            assert!(tx.involved_domains().contains(&home));
        }
    }
}
