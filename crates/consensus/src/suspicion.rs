//! Adaptive suspicion-timeout state machine shared by both engines'
//! adapters.
//!
//! Modelled on sawtooth-pbft's idle/commit timers: the suspicion window that
//! decides "the primary is dead" starts at a configured initial value,
//! **backs off** exponentially every time a suspicion fires while the
//! replica is still stuck (each firing is a *failed* view change — the
//! candidate primary elected by the previous one did not restore progress
//! within the window), and **decays** back toward a per-placement floor each
//! time delivery progress is observed.  Under a fixed [`LivenessConfig`]
//! (no [`AdaptiveTimeout`]) the window never moves, which keeps
//! fixed-timeout runs bit-identical to the historical pipeline.
//!
//! The state machine is deliberately tiny and engine-agnostic: the node
//! adapters own the actual timers and feed `on_suspect` / `on_progress`
//! observations in; the machine only answers "how long should the next
//! window be".

use saguaro_types::{AdaptiveTimeout, Duration, LivenessConfig};

/// The per-replica suspicion-window state machine.
#[derive(Clone, Copy, Debug)]
pub struct SuspicionTimer {
    liveness: LivenessConfig,
    current: Duration,
    suspicions: u64,
}

impl SuspicionTimer {
    /// A timer for the given liveness knobs, armed at the initial window.
    pub fn new(liveness: LivenessConfig) -> Self {
        Self {
            liveness,
            current: liveness.initial_timeout(),
            suspicions: 0,
        }
    }

    /// The window the adapter should arm for the next progress check.
    pub fn window(&self) -> Duration {
        self.current
    }

    /// The adaptive knobs, if adaptivity is on.
    pub fn adaptive(&self) -> Option<AdaptiveTimeout> {
        self.liveness.adaptive
    }

    /// Total suspicions fired since start (adaptive and fixed alike).
    pub fn suspicions(&self) -> u64 {
        self.suspicions
    }

    /// A suspicion fired while work was pending and no progress had been
    /// made: the view change driven by the *previous* firing (if any)
    /// failed, so the window backs off before the next one.
    pub fn on_suspect(&mut self) {
        self.suspicions += 1;
        if let Some(knobs) = self.liveness.adaptive {
            self.current = knobs.backoff(self.current);
        }
    }

    /// Delivery progress was observed at a progress check: the pipeline is
    /// healthy, so the window decays back toward the floor.
    pub fn on_progress(&mut self) {
        if let Some(knobs) = self.liveness.adaptive {
            self.current = knobs.decay(self.current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_config_never_moves_the_window() {
        let mut t = SuspicionTimer::new(LivenessConfig::standard());
        let w = t.window();
        t.on_suspect();
        t.on_suspect();
        assert_eq!(t.window(), w);
        t.on_progress();
        assert_eq!(t.window(), w);
        assert_eq!(t.suspicions(), 2);
        assert!(t.adaptive().is_none());
    }

    #[test]
    fn adaptive_config_backs_off_and_decays() {
        let knobs = AdaptiveTimeout::with_floor(Duration::from_millis(10));
        let mut t = SuspicionTimer::new(LivenessConfig::adaptive(knobs));
        assert_eq!(t.window(), Duration::from_millis(10));
        t.on_suspect();
        assert_eq!(t.window(), Duration::from_millis(20));
        t.on_suspect();
        assert_eq!(t.window(), Duration::from_millis(40));
        // Repeated failures saturate at the cap.
        for _ in 0..8 {
            t.on_suspect();
        }
        assert_eq!(t.window(), knobs.max);
        // Progress walks the window back down to the floor.
        for _ in 0..8 {
            t.on_progress();
        }
        assert_eq!(t.window(), knobs.floor);
        assert_eq!(t.suspicions(), 10);
    }
}
