//! Leader-based Multi-Paxos for crash-only domains.
//!
//! The implementation follows the viewstamped-replication formulation that
//! production Multi-Paxos deployments use: a stable leader (the *primary* of
//! the current view) assigns consecutive sequence numbers to commands and
//! drives a single accept round per command; a majority of `f + 1` out of
//! `2f + 1` acceptances commits the command.  When the leader is suspected
//! (progress timeout), replicas run a view change that elects the next
//! replica round-robin and carries over every possibly-committed entry.
//!
//! Crash-only nodes never lie, so no signatures are exchanged inside the
//! domain; authentication and certification only matter on the cross-domain
//! paths handled by `saguaro-core`.

use crate::checkpoint::CheckpointKeeper;
use crate::interface::{primary_for_view, Command, Step};
use saguaro_crypto::Digest;
use saguaro_types::{CheckpointConfig, NodeId, QuorumSpec, SeqNo, StateSnapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Messages exchanged by Paxos replicas within one domain.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg<C> {
    /// Leader → replicas: accept this command at this sequence number.
    Accept {
        /// Leader's view.
        view: u64,
        /// Sequence number assigned by the leader.
        seq: SeqNo,
        /// The command.
        cmd: C,
    },
    /// Replica → leader: the command was accepted.
    Accepted {
        /// View in which the command was accepted.
        view: u64,
        /// Sequence number.
        seq: SeqNo,
        /// Digest of the accepted command (sanity check).
        digest: Digest,
    },
    /// Leader → replicas: the command at `seq` is committed.
    Learn {
        /// View.
        view: u64,
        /// Sequence number now committed.
        seq: SeqNo,
    },
    /// Replica → all: start a view change towards `new_view`, carrying every
    /// accepted entry above the sender's stable checkpoint.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// `(seq, view accepted in, command)` for every accepted entry above
        /// the sender's stable checkpoint.
        accepted: Vec<(SeqNo, u64, C)>,
        /// The sender's last executed sequence number.
        last_committed: SeqNo,
        /// The sender's stable checkpoint (0 when checkpointing is off):
        /// everything at or below it is quorum-executed and omitted from the
        /// vote, which is what keeps vote payloads bounded.
        checkpoint: SeqNo,
    },
    /// New leader → replicas: the new view is active with this log suffix.
    NewView {
        /// The new view number.
        view: u64,
        /// Entries (seq, command) the new leader re-proposes.
        log: Vec<(SeqNo, C)>,
        /// Commit frontier the new leader knows about.
        last_committed: SeqNo,
    },
    /// Replica → all: this replica has executed through `seq` (periodic
    /// checkpoint announcement; only sent when checkpointing is active).
    Checkpoint {
        /// Executed sequence number.
        seq: SeqNo,
        /// Digest of the command executed at `seq` (modelled, not verified).
        digest: Digest,
    },
    /// Gap-stalled replica → an up-to-date peer: send me every committed
    /// entry above `above` (VR-style state transfer).
    StateRequest {
        /// The requester's delivery frontier.
        above: SeqNo,
    },
    /// Up-to-date peer → gap-stalled replica: the missing committed entries.
    StateReply {
        /// Committed `(seq, command)` entries, contiguous from `above + 1`.
        entries: Vec<(SeqNo, C)>,
        /// The sender's delivery frontier (further evidence for the hint).
        committed_to: SeqNo,
    },
    /// Up-to-date peer → deeply stalled replica whose requested frontier
    /// was pruned away: a materialized application snapshot plus the short
    /// retained command tail above it.  Catch-up cost is O(retention)
    /// regardless of how far behind the requester is.
    SnapshotReply {
        /// The responder's snapshot at its snapshot point.
        snapshot: Arc<StateSnapshot>,
        /// Committed `(seq, command)` entries retained above the snapshot,
        /// contiguous from `snapshot.seq + 1`.
        tail: Vec<(SeqNo, C)>,
        /// The sender's delivery frontier (further evidence for the hint).
        committed_to: SeqNo,
    },
}

/// Per-sequence bookkeeping at the leader and replicas.
#[derive(Clone, Debug)]
struct Slot<C> {
    cmd: C,
    accepted_in_view: u64,
    /// Replicas (including self) known to have accepted.
    acks: BTreeSet<NodeId>,
    committed: bool,
}

/// One replica's view-change vote: its accepted `(seq, view, command)`
/// entries, its last delivered sequence number and its stable checkpoint.
type ViewChangeVote<C> = (Vec<(SeqNo, u64, C)>, SeqNo, SeqNo);

/// A Multi-Paxos replica.
#[derive(Clone, Debug)]
pub struct PaxosReplica<C> {
    me: NodeId,
    replicas: Vec<NodeId>,
    quorum: QuorumSpec,
    view: u64,
    /// Next sequence number the leader will assign.
    next_seq: SeqNo,
    /// Last sequence delivered to the application (no gaps).
    last_delivered: SeqNo,
    slots: BTreeMap<SeqNo, Slot<C>>,
    /// Learns that arrived before their Accept (out-of-order delivery),
    /// keyed by sequence number, holding the view the Learn was issued in;
    /// applied once an Accept from that view (or newer) creates the slot.
    pending_learns: BTreeMap<SeqNo, u64>,
    /// View-change votes collected per proposed view.
    view_change_votes: BTreeMap<u64, BTreeMap<NodeId, ViewChangeVote<C>>>,
    /// Replicas caught sending two *conflicting* view-change votes for the
    /// same view.  Paxos assumes crash faults, but the defence is shared
    /// with PBFT so a misbehaving (or misconfigured) replica cannot poison
    /// the new leader's merge: both votes are discarded and the sender is
    /// ignored for that view.
    vc_tainted: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Conflicting view-change certificates detected and discarded.
    certificate_conflicts: u64,
    /// True while a view change is in progress (stop accepting in old view).
    in_view_change: bool,
    /// Highest view this replica has voted a view change towards.  Repeated
    /// progress timeouts escalate past it, so a view whose would-be leader
    /// is itself crashed cannot wedge the domain.
    highest_vc: u64,
    /// Checkpoint agreement and state-transfer pacing.  Under the legacy
    /// configuration (the default) Paxos keeps no checkpoints, votes carry
    /// the full slot history, and the pipeline is bit-identical to the
    /// pre-subsystem engine.
    checkpoint: CheckpointKeeper,
    /// Every delivered entry, retained for serving state transfer (the
    /// durable chain; only populated when state transfer is enabled, and
    /// pruned below the keeper's prune floor under a finite retention
    /// window).
    delivered_log: BTreeMap<SeqNo, C>,
    /// The latest materialized (or catch-up-installed) application
    /// snapshot, used to answer requests below the retained tail.
    snapshot: Option<Arc<StateSnapshot>>,
}

impl<C: Command> PaxosReplica<C> {
    /// Creates a replica.  `replicas` must be the same (sorted) list on every
    /// member of the domain.
    pub fn new(me: NodeId, mut replicas: Vec<NodeId>, quorum: QuorumSpec) -> Self {
        replicas.sort();
        Self {
            me,
            replicas,
            quorum,
            view: 0,
            next_seq: 1,
            last_delivered: 0,
            slots: BTreeMap::new(),
            pending_learns: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            vc_tainted: BTreeMap::new(),
            certificate_conflicts: 0,
            in_view_change: false,
            highest_vc: 0,
            checkpoint: CheckpointKeeper::new(CheckpointConfig::legacy(), None),
            delivered_log: BTreeMap::new(),
            snapshot: None,
        }
    }

    /// Replaces the checkpoint / state-transfer configuration (builder
    /// style; Paxos has no legacy interval, so `legacy` keeps it off).
    pub fn with_checkpointing(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = CheckpointKeeper::new(config, None);
        self
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary (leader) of the current view.
    pub fn primary(&self) -> NodeId {
        primary_for_view(self.view, &self.replicas)
    }

    /// True if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.me
    }

    /// Last sequence number delivered to the application.
    pub fn last_delivered(&self) -> SeqNo {
        self.last_delivered
    }

    /// Number of commands accepted but not yet delivered.
    pub fn backlog(&self) -> usize {
        self.slots.values().filter(|s| !s.committed).count()
    }

    /// The last stable (quorum-certified executed) checkpoint; 0 when
    /// checkpointing is off.
    pub fn stable_checkpoint(&self) -> SeqNo {
        self.checkpoint.stable()
    }

    /// Number of slots currently retained (bounded by checkpoint GC).
    pub fn log_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of entries a view-change vote sent right now would carry —
    /// the slots above the stable checkpoint.
    pub fn vote_entries(&self) -> usize {
        let stable = self.checkpoint.stable();
        self.slots.keys().filter(|seq| **seq > stable).count()
    }

    /// Number of delivered entries retained in the durable chain.
    pub fn chain_len(&self) -> u64 {
        self.delivered_log.len() as u64
    }

    /// First sequence number still retained in the durable chain
    /// (`last_delivered + 1` when nothing is retained).
    pub fn chain_start(&self) -> SeqNo {
        self.delivered_log
            .keys()
            .next()
            .copied()
            .unwrap_or(self.last_delivered + 1)
    }

    /// The snapshot point currently held, if any.
    pub fn snapshot_seq(&self) -> Option<SeqNo> {
        self.snapshot.as_ref().map(|s| s.seq)
    }

    /// Stores the application snapshot the adapter materialized in response
    /// to a [`Step::TakeSnapshot`] (or obtained out of band), then prunes
    /// the entry-grained state the snapshot makes redundant.  Stale
    /// snapshots (at or below the held one) are ignored.
    pub fn store_snapshot(&mut self, snapshot: Arc<StateSnapshot>) {
        if self
            .snapshot
            .as_ref()
            .is_some_and(|s| s.seq >= snapshot.seq)
        {
            return;
        }
        self.snapshot = Some(snapshot);
        self.prune_entry_state();
    }

    /// Discards durable-chain entries no future correct request can need:
    /// everything at or below the keeper's prune floor, capped at the held
    /// snapshot point so the tail above the snapshot stays servable.  A
    /// no-op unless a finite retention window is configured.
    fn prune_entry_state(&mut self) {
        let Some(snapshot_seq) = self.snapshot_seq() else {
            return;
        };
        if !self.checkpoint.prunes() {
            return;
        }
        let floor = self
            .checkpoint
            .prune_floor(self.replicas.len())
            .min(snapshot_seq);
        if floor > 0 {
            self.delivered_log = self.delivered_log.split_off(&(floor + 1));
        }
    }

    fn majority(&self) -> usize {
        self.quorum.commit_quorum()
    }

    /// Proposes a command.  Only the primary drives consensus; a backup
    /// returns a `Send` step forwarding the command is the caller's job (the
    /// adapter forwards client requests to the primary).
    pub fn propose(&mut self, cmd: C) -> Vec<Step<C, PaxosMsg<C>>> {
        if !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut slot = Slot {
            cmd: cmd.clone(),
            accepted_in_view: self.view,
            acks: BTreeSet::new(),
            committed: false,
        };
        slot.acks.insert(self.me);
        self.slots.insert(seq, slot);
        let mut steps = vec![Step::Broadcast {
            msg: PaxosMsg::Accept {
                view: self.view,
                seq,
                cmd,
            },
        }];
        // A domain of a single replica (f = 0) commits immediately.
        steps.extend(self.maybe_commit(seq));
        steps
    }

    /// Handles a protocol message from a peer replica.
    pub fn on_message(&mut self, from: NodeId, msg: PaxosMsg<C>) -> Vec<Step<C, PaxosMsg<C>>> {
        match msg {
            PaxosMsg::Accept { view, seq, cmd } => self.on_accept(from, view, seq, cmd),
            PaxosMsg::Accepted { view, seq, digest } => self.on_accepted(from, view, seq, digest),
            PaxosMsg::Learn { view, seq } => self.on_learn(from, view, seq),
            PaxosMsg::ViewChange {
                new_view,
                accepted,
                last_committed,
                checkpoint,
            } => self.on_view_change(from, new_view, accepted, last_committed, checkpoint),
            PaxosMsg::NewView {
                view,
                log,
                last_committed,
            } => self.on_new_view(from, view, log, last_committed),
            PaxosMsg::Checkpoint { seq, digest } => self.on_checkpoint(from, seq, digest),
            PaxosMsg::StateRequest { above } => self.on_state_request(from, above),
            PaxosMsg::StateReply {
                entries,
                committed_to,
            } => self.on_state_reply(from, entries, committed_to),
            PaxosMsg::SnapshotReply {
                snapshot,
                tail,
                committed_to,
            } => self.on_snapshot_reply(from, snapshot, tail, committed_to),
        }
    }

    fn on_accept(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        cmd: C,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view
            || self.in_view_change
            || from != primary_for_view(view, &self.replicas)
            || seq <= self.checkpoint.stable()
        {
            return Vec::new();
        }
        if view > self.view {
            // We missed a view change; adopt the newer view.
            self.view = view;
            self.in_view_change = false;
        }
        let digest = cmd.digest();
        let slot = self.slots.entry(seq).or_insert_with(|| Slot {
            cmd: cmd.clone(),
            accepted_in_view: view,
            acks: BTreeSet::new(),
            committed: false,
        });
        slot.cmd = cmd;
        slot.accepted_in_view = view;
        slot.acks.insert(self.me);
        let mut steps = vec![Step::Send {
            to: from,
            msg: PaxosMsg::Accepted { view, seq, digest },
        }];
        if let Some(&learn_view) = self.pending_learns.get(&seq) {
            // Only an Accept from the Learn's view (or newer) carries the
            // command that view actually chose; an older-view Accept must
            // not be committed under a newer view's Learn.
            if view >= learn_view {
                self.pending_learns.remove(&seq);
                if let Some(slot) = self.slots.get_mut(&seq) {
                    slot.committed = true;
                }
                steps.extend(self.drain_deliveries());
            }
        }
        steps
    }

    fn on_accepted(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        digest: Digest,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view != self.view || !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.cmd.digest() != digest || slot.committed {
            return Vec::new();
        }
        slot.acks.insert(from);
        self.maybe_commit(seq)
    }

    /// Commits `seq` if a majority accepted it, emitting Learn + deliveries.
    fn maybe_commit(&mut self, seq: SeqNo) -> Vec<Step<C, PaxosMsg<C>>> {
        let majority = self.majority();
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.committed || slot.acks.len() < majority {
            return Vec::new();
        }
        slot.committed = true;
        let mut steps = vec![Step::Broadcast {
            msg: PaxosMsg::Learn { view, seq },
        }];
        steps.extend(self.drain_deliveries());
        steps
    }

    fn on_learn(&mut self, from: NodeId, view: u64, seq: SeqNo) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view || seq <= self.checkpoint.stable() {
            return Vec::new();
        }
        // A Learn certifies `seq` is committed at the leader: frontier
        // evidence for the state-transfer gap detector.
        self.checkpoint.note_hint(seq, from);
        match self.slots.get_mut(&seq) {
            // A Learn issued in view v certifies the value *accepted in v*
            // (or re-proposed into a later view).  A slot filled in an older
            // view may hold a deposed leader's divergent proposal — e.g. one
            // it made while partitioned away — so committing it here would
            // fork the log.
            Some(slot) if slot.accepted_in_view >= view => slot.committed = true,
            // Slot missing (Learn overtook its Accept) or stale: remember
            // the commit and apply it when an Accept from the Learn's view
            // (or newer) supplies the certified value.
            _ => {
                let entry = self.pending_learns.entry(seq).or_insert(view);
                *entry = (*entry).max(view);
            }
        }
        let mut steps = self.drain_deliveries();
        steps.extend(self.maybe_request_state());
        steps
    }

    /// Emits `Deliver` steps for every committed command that directly follows
    /// the last delivered sequence number, retaining each in the durable
    /// chain and announcing periodic checkpoints when configured.
    fn drain_deliveries(&mut self) -> Vec<Step<C, PaxosMsg<C>>> {
        let mut steps = Vec::new();
        loop {
            let next = self.last_delivered + 1;
            match self.slots.get(&next) {
                Some(slot) if slot.committed => {
                    let command = slot.cmd.clone();
                    steps.push(Step::Deliver {
                        seq: next,
                        command: command.clone(),
                    });
                    self.last_delivered = next;
                    steps.extend(self.note_executed(next, command));
                }
                _ => break,
            }
        }
        steps
    }

    /// Post-execution bookkeeping for one delivered entry: retain it for
    /// state transfer and announce a checkpoint at interval boundaries.
    fn note_executed(&mut self, seq: SeqNo, command: C) -> Vec<Step<C, PaxosMsg<C>>> {
        let mut steps = Vec::new();
        if self.checkpoint.state_transfer_enabled() {
            self.delivered_log.insert(seq, command.clone());
        }
        if self.checkpoint.announces_at(seq) {
            steps.push(Step::Broadcast {
                msg: PaxosMsg::Checkpoint {
                    seq,
                    digest: command.digest(),
                },
            });
            if self.checkpoint.prunes() {
                // The adapter materializes its state as of this point in
                // the stream and hands it back via `store_snapshot`.
                steps.push(Step::TakeSnapshot { seq });
            }
            let majority = self.majority();
            if self
                .checkpoint
                .record_vote(self.me, seq, majority, self.last_delivered)
            {
                self.gc_below_stable();
            }
        }
        steps
    }

    /// Garbage-collects every slot at or below the stable checkpoint.  Safe
    /// because stabilisation requires this replica to have executed the
    /// floor: everything dropped has already been delivered locally.
    fn gc_below_stable(&mut self) {
        let stable = self.checkpoint.stable();
        self.slots.retain(|seq, _| *seq > stable);
        self.pending_learns.retain(|seq, _| *seq > stable);
        self.prune_entry_state();
    }

    fn on_checkpoint(
        &mut self,
        from: NodeId,
        seq: SeqNo,
        _digest: Digest,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        // An announced floor proves `seq` is committed at the announcer.
        self.checkpoint.note_hint(seq, from);
        let majority = self.majority();
        if self
            .checkpoint
            .record_vote(from, seq, majority, self.last_delivered)
        {
            self.gc_below_stable();
        }
        // Even a non-stabilising announcement can raise the prune floor
        // (the announcer's executed floor is new evidence).
        self.prune_entry_state();
        self.maybe_request_state()
    }

    /// Fetches missing committed entries when the commit-frontier evidence
    /// runs ahead of a gap this replica cannot fill locally.
    fn maybe_request_state(&mut self) -> Vec<Step<C, PaxosMsg<C>>> {
        let next_commits = self
            .slots
            .get(&(self.last_delivered + 1))
            .is_some_and(|slot| slot.committed);
        match self
            .checkpoint
            .should_request(self.last_delivered, next_commits)
        {
            Some(peer) if peer != self.me => vec![Step::Send {
                to: peer,
                msg: PaxosMsg::StateRequest {
                    above: self.last_delivered,
                },
            }],
            _ => Vec::new(),
        }
    }

    fn on_state_request(&mut self, from: NodeId, above: SeqNo) -> Vec<Step<C, PaxosMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        if above >= self.last_delivered {
            return Vec::new(); // nothing the requester is missing
        }
        if self.delivered_log.contains_key(&(above + 1)) {
            // The full tail above the requester's frontier is retained:
            // the historical full-replay reply.
            let entries: Vec<(SeqNo, C)> = self
                .delivered_log
                .range(above + 1..)
                .map(|(seq, cmd)| (*seq, cmd.clone()))
                .collect();
            return vec![Step::Send {
                to: from,
                msg: PaxosMsg::StateReply {
                    entries,
                    committed_to: self.last_delivered,
                },
            }];
        }
        // The requested frontier was pruned away: serve the snapshot plus
        // the retained tail above it instead of a full replay.
        match &self.snapshot {
            Some(snapshot) if snapshot.seq > above => {
                let tail: Vec<(SeqNo, C)> = self
                    .delivered_log
                    .range(snapshot.seq + 1..)
                    .map(|(seq, cmd)| (*seq, cmd.clone()))
                    .collect();
                vec![Step::Send {
                    to: from,
                    msg: PaxosMsg::SnapshotReply {
                        snapshot: snapshot.clone(),
                        tail,
                        committed_to: self.last_delivered,
                    },
                }]
            }
            _ => Vec::new(),
        }
    }

    fn on_state_reply(
        &mut self,
        from: NodeId,
        entries: Vec<(SeqNo, C)>,
        committed_to: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        self.checkpoint.note_hint(committed_to, from);
        let mut steps = Vec::new();
        let mut applied = false;
        for (seq, command) in entries {
            if seq != self.last_delivered + 1 {
                continue; // already executed, or non-contiguous garbage
            }
            self.slots.remove(&seq);
            self.pending_learns.remove(&seq);
            steps.push(Step::Deliver {
                seq,
                command: command.clone(),
            });
            self.last_delivered = seq;
            applied = true;
            steps.extend(self.note_executed(seq, command));
        }
        if applied {
            self.checkpoint.transfer_applied();
            // Committed slots stranded above the gap drain now.
            steps.extend(self.drain_deliveries());
        }
        steps.extend(self.maybe_request_state());
        steps
    }

    fn on_snapshot_reply(
        &mut self,
        from: NodeId,
        snapshot: Arc<StateSnapshot>,
        tail: Vec<(SeqNo, C)>,
        committed_to: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        self.checkpoint.note_hint(committed_to, from);
        let mut steps = Vec::new();
        let mut applied = false;
        if snapshot.seq > self.last_delivered {
            // Jump the execution frontier to the snapshot point: everything
            // at or below it is superseded by the snapshot's state.  The
            // snapshot was materialized at a quorum-stable checkpoint, so
            // adopting it as our stable floor is sound.
            self.last_delivered = snapshot.seq;
            self.next_seq = self.next_seq.max(snapshot.seq + 1);
            self.slots.retain(|seq, _| *seq > snapshot.seq);
            self.pending_learns.retain(|seq, _| *seq > snapshot.seq);
            self.delivered_log = self.delivered_log.split_off(&(snapshot.seq + 1));
            self.checkpoint.adopt_stable(snapshot.seq);
            self.snapshot = Some(snapshot.clone());
            steps.push(Step::InstallSnapshot { snapshot });
            applied = true;
        }
        // The retained tail replays through the normal delivery path.
        for (seq, command) in tail {
            if seq != self.last_delivered + 1 {
                continue; // already executed, or non-contiguous garbage
            }
            self.slots.remove(&seq);
            self.pending_learns.remove(&seq);
            steps.push(Step::Deliver {
                seq,
                command: command.clone(),
            });
            self.last_delivered = seq;
            applied = true;
            steps.extend(self.note_executed(seq, command));
        }
        if applied {
            self.checkpoint.transfer_applied();
            steps.extend(self.drain_deliveries());
        }
        steps.extend(self.maybe_request_state());
        steps
    }

    /// Called by the adapter when the progress timer fires while requests are
    /// outstanding: suspect the primary and start a view change.
    pub fn on_progress_timeout(&mut self) -> Vec<Step<C, PaxosMsg<C>>> {
        if self.is_primary() && !self.in_view_change {
            // The primary itself does not suspect itself.
            return Vec::new();
        }
        // Escalate past any view change already attempted: if the candidate
        // leader of the last attempt is itself dead, the next timeout must
        // move on to the following replica rather than retry forever.
        self.start_view_change(self.view.max(self.highest_vc) + 1)
    }

    fn start_view_change(&mut self, new_view: u64) -> Vec<Step<C, PaxosMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.in_view_change = true;
        self.highest_vc = self.highest_vc.max(new_view);
        // The vote carries every slot above the stable checkpoint, delivered
        // ones included: quorum intersection then guarantees the new
        // leader's merge sees each chosen value even when the only voter
        // still holding it has already executed it (a delivered-entries
        // filter here once let a new leader re-assign an executed sequence
        // number to a fresh command, forking stragglers).  Entries at or
        // below the checkpoint are quorum-executed and immutable; laggards
        // that still need them catch up through state transfer, so omitting
        // them is what bounds the vote by `history − checkpoint`.
        let stable = self.checkpoint.stable();
        let accepted: Vec<(SeqNo, u64, C)> = self
            .slots
            .iter()
            .filter(|(seq, _)| **seq > stable)
            .map(|(seq, slot)| (*seq, slot.accepted_in_view, slot.cmd.clone()))
            .collect();
        let msg = PaxosMsg::ViewChange {
            new_view,
            accepted: accepted.clone(),
            last_committed: self.last_delivered,
            checkpoint: stable,
        };
        // Record our own vote.
        let mut steps =
            self.record_view_change_vote(self.me, new_view, accepted, self.last_delivered, stable);
        steps.insert(0, Step::Broadcast { msg });
        steps
    }

    fn on_view_change(
        &mut self,
        from: NodeId,
        new_view: u64,
        accepted: Vec<(SeqNo, u64, C)>,
        last_committed: SeqNo,
        checkpoint: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        let mut steps = Vec::new();
        // Join the view change ourselves (echo) the first time we hear of
        // it, and again whenever a peer escalates beyond our last attempt.
        if !self.in_view_change || new_view > self.highest_vc {
            steps.extend(self.start_view_change(new_view));
        }
        steps.extend(self.record_view_change_vote(
            from,
            new_view,
            accepted,
            last_committed,
            checkpoint,
        ));
        steps
    }

    /// True if two view-change votes carry different certificates (compared
    /// by digest, so only genuine payload conflicts count).
    fn votes_conflict(a: &ViewChangeVote<C>, b: &ViewChangeVote<C>) -> bool {
        a.1 != b.1
            || a.2 != b.2
            || a.0.len() != b.0.len()
            || a.0
                .iter()
                .zip(b.0.iter())
                .any(|((s1, v1, c1), (s2, v2, c2))| {
                    s1 != s2 || v1 != v2 || c1.digest() != c2.digest()
                })
    }

    /// Conflicting view-change certificates this replica has detected and
    /// discarded.
    pub fn certificate_conflicts(&self) -> u64 {
        self.certificate_conflicts
    }

    fn record_view_change_vote(
        &mut self,
        from: NodeId,
        new_view: u64,
        accepted: Vec<(SeqNo, u64, C)>,
        last_committed: SeqNo,
        checkpoint: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        // Defence against conflicting view-change certificates — see
        // `vc_tainted`.  Identical re-deliveries are harmless overwrites,
        // and a replica always trusts its own vote.
        if self
            .vc_tainted
            .get(&new_view)
            .is_some_and(|t| t.contains(&from))
        {
            return Vec::new();
        }
        let vote = (accepted, last_committed, checkpoint);
        let votes = self.view_change_votes.entry(new_view).or_default();
        if from != self.me {
            if let Some(existing) = votes.get(&from) {
                if Self::votes_conflict(existing, &vote) {
                    votes.remove(&from);
                    self.vc_tainted.entry(new_view).or_default().insert(from);
                    self.certificate_conflicts += 1;
                    return Vec::new();
                }
            }
        }
        votes.insert(from, vote);
        let votes = &self.view_change_votes[&new_view];
        let i_am_new_primary = primary_for_view(new_view, &self.replicas) == self.me;
        if !i_am_new_primary || votes.len() < self.majority() {
            return Vec::new();
        }
        // Become the leader of the new view: merge the accepted entries,
        // preferring the value accepted in the highest view per slot.
        let mut merged: BTreeMap<SeqNo, (u64, C)> = BTreeMap::new();
        let mut frontier = 0;
        let mut floor = SeqNo::MAX;
        let mut best_voter: Option<(SeqNo, NodeId)> = None;
        for (voter, (acc, lc, cp)) in votes.iter() {
            // A voter's checkpoint certifies quorum execution through it, so
            // the new view's frontier must clear it even when no vote
            // carries the entries themselves.
            frontier = frontier.max(*lc).max(*cp);
            floor = floor.min(*lc);
            if best_voter.is_none() || best_voter.is_some_and(|(best, _)| *lc > best) {
                best_voter = Some((*lc, *voter));
            }
            for (seq, v, cmd) in acc {
                match merged.get(seq) {
                    Some((existing_view, _)) if existing_view >= v => {}
                    _ => {
                        merged.insert(*seq, (*v, cmd.clone()));
                    }
                }
            }
        }
        // If a voter is ahead of this new leader's own frontier, remember it
        // as a state-transfer source: the leader itself may be the straggler.
        if let Some((lc, voter)) = best_voter {
            if voter != self.me {
                self.checkpoint.note_hint(lc, voter);
            }
        }
        self.view = new_view;
        self.in_view_change = false;
        self.view_change_votes.remove(&new_view);
        // Taint records for completed views are no longer consulted.
        self.vc_tainted.retain(|v, _| *v > new_view);

        // Re-install the merged log locally and recompute next_seq.  The log
        // starts at the *lowest* voter frontier, not the highest: a voter
        // that has not yet executed an already-chosen entry needs its value
        // re-proposed (re-accepting an executed entry elsewhere is a cheap
        // no-op), and followers only treat re-accepted entries as
        // committed — never whatever stale value an old view left in a slot.
        let log: Vec<(SeqNo, C)> = merged
            .iter()
            .filter(|(seq, _)| **seq > floor)
            .map(|(seq, (_, cmd))| (*seq, cmd.clone()))
            .collect();
        for (seq, cmd) in &log {
            let slot = self.slots.entry(*seq).or_insert_with(|| Slot {
                cmd: cmd.clone(),
                accepted_in_view: new_view,
                acks: BTreeSet::new(),
                committed: false,
            });
            slot.cmd = cmd.clone();
            slot.accepted_in_view = new_view;
            // Acknowledgements collected in earlier views were given for
            // whatever value the slot held *then*; counting them towards the
            // re-proposed value could commit it with acceptors that never
            // saw it (the PBFT reinstall clears its vote sets for the same
            // reason).  Committed slots keep their flag — commitment is
            // value-stable — only the ack set restarts for the new view.
            slot.acks.clear();
            slot.acks.insert(self.me);
        }
        self.next_seq = self
            .slots
            .keys()
            .max()
            .copied()
            .unwrap_or(frontier)
            .max(frontier)
            + 1;

        let mut steps = vec![
            Step::ViewChanged {
                view: new_view,
                primary: self.me,
            },
            Step::Broadcast {
                msg: PaxosMsg::NewView {
                    view: new_view,
                    log: log.clone(),
                    last_committed: frontier,
                },
            },
        ];
        // Single-replica domains (or f=0) may be able to commit immediately.
        let seqs: Vec<SeqNo> = log.iter().map(|(s, _)| *s).collect();
        for s in seqs {
            steps.extend(self.maybe_commit(s));
        }
        // A new leader elected while itself gap-stalled (its voters executed
        // past it) fetches the missing prefix rather than waiting forever.
        steps.extend(self.maybe_request_state());
        steps
    }

    fn on_new_view(
        &mut self,
        from: NodeId,
        view: u64,
        log: Vec<(SeqNo, C)>,
        last_committed: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view || from != primary_for_view(view, &self.replicas) {
            return Vec::new();
        }
        self.view = view;
        self.in_view_change = false;
        // The advertised frontier is commit evidence from the new leader.
        self.checkpoint.note_hint(last_committed, from);
        let mut steps = vec![Step::ViewChanged {
            view,
            primary: from,
        }];
        // Accept every entry the new leader re-proposed.
        for (seq, cmd) in log {
            let digest = cmd.digest();
            let slot = self.slots.entry(seq).or_insert_with(|| Slot {
                cmd: cmd.clone(),
                accepted_in_view: view,
                acks: BTreeSet::new(),
                committed: false,
            });
            slot.cmd = cmd;
            slot.accepted_in_view = view;
            steps.push(Step::Send {
                to: from,
                msg: PaxosMsg::Accepted { view, seq, digest },
            });
        }
        // Catch up the commit frontier the leader advertised — but only
        // through entries re-accepted in this very view (the log installed
        // just above).  A slot still holding an *older* view's value may be
        // a deposed leader's divergent proposal; blindly committing it here
        // once forked a recovered replica's log.
        for seq in (self.last_delivered + 1)..=last_committed {
            if let Some(slot) = self.slots.get_mut(&seq) {
                if slot.accepted_in_view >= view {
                    slot.committed = true;
                }
            }
        }
        steps.extend(self.drain_deliveries());
        // Entries below the new leader's log start may be gone from every
        // slot map (garbage-collected below the checkpoint): a follower
        // still gapped after the catch-up above fetches them instead.
        steps.extend(self.maybe_request_state());
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::{DomainId, FailureModel};
    use std::collections::VecDeque;

    type Cmd = Vec<u8>;

    fn make_domain(n: u16) -> (Vec<NodeId>, Vec<PaxosReplica<Cmd>>) {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
        let quorum = QuorumSpec::for_size(FailureModel::Crash, n as usize);
        let reps = nodes
            .iter()
            .map(|id| PaxosReplica::new(*id, nodes.clone(), quorum))
            .collect();
        (nodes, reps)
    }

    /// Per-origin initial protocol steps fed into the test network.
    type InitialSteps = Vec<(usize, Vec<Step<Cmd, PaxosMsg<Cmd>>>)>;

    #[test]
    fn learn_arriving_before_accept_still_commits() {
        let (nodes, mut reps) = make_domain(3);
        // Replica 1 sees the leader's Learn before the Accept it refers to
        // (reordered network).  The commit must be buffered, not dropped.
        let steps = reps[1].on_message(nodes[0], PaxosMsg::Learn { view: 0, seq: 1 });
        assert!(steps.is_empty(), "nothing deliverable yet");
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"ooo".to_vec(),
            },
        );
        assert!(
            steps
                .iter()
                .any(|s| matches!(s, Step::Deliver { seq: 1, .. })),
            "buffered learn was not applied: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 1);
    }

    #[test]
    fn learn_does_not_commit_a_value_accepted_in_an_older_view() {
        // Replica 1 accepted a value from the view-0 leader, then missed the
        // view change.  When the view-1 leader's Learn for the same slot
        // arrives, the locally stored view-0 value may differ from what view
        // 1 chose — committing it would fork the log.  The commit must be
        // buffered until the view-1 Accept supplies the certified value.
        let (nodes, mut reps) = make_domain(3);
        let _ = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"deposed".to_vec(),
            },
        );
        let steps = reps[1].on_message(nodes[1], PaxosMsg::Learn { view: 1, seq: 1 });
        assert!(
            !steps.iter().any(|s| matches!(s, Step::Deliver { .. })),
            "stale slot must not commit under a newer view's Learn: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 0);
        // The view-1 Accept carries what view 1 actually chose; only then
        // does the buffered commit apply — to the certified value.
        let steps = reps[1].on_message(
            nodes[1],
            PaxosMsg::Accept {
                view: 1,
                seq: 1,
                cmd: b"chosen".to_vec(),
            },
        );
        let delivered: Vec<&Cmd> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Deliver { command, .. } => Some(command),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![&b"chosen".to_vec()]);
    }

    #[test]
    fn buffered_learn_from_newer_view_does_not_commit_an_old_view_accept() {
        let (nodes, mut reps) = make_domain(3);
        // A Learn issued in view 1 overtakes everything else.
        let steps = reps[1].on_message(nodes[0], PaxosMsg::Learn { view: 1, seq: 1 });
        assert!(steps.is_empty());
        // A stale view-0 Accept for the same seq must not be committed under
        // the newer view's Learn: view 1 may have chosen a different command.
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"stale".to_vec(),
            },
        );
        assert!(
            !steps.iter().any(|s| matches!(s, Step::Deliver { .. })),
            "stale accept must not deliver: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 0);
    }

    /// Routes every Send/Broadcast step until quiescence; returns delivered
    /// (seq, cmd) per replica index.  `down` replicas neither send nor receive.
    fn run_network(
        nodes: &[NodeId],
        reps: &mut [PaxosReplica<Cmd>],
        initial: InitialSteps,
        down: &[usize],
    ) -> Vec<Vec<(SeqNo, Cmd)>> {
        let mut delivered = vec![Vec::new(); reps.len()];
        let mut queue: VecDeque<(usize, NodeId, PaxosMsg<Cmd>)> = VecDeque::new();
        let index_of = |id: NodeId| nodes.iter().position(|n| *n == id).unwrap();

        let handle_steps = |origin: usize,
                            steps: Vec<Step<Cmd, PaxosMsg<Cmd>>>,
                            queue: &mut VecDeque<(usize, NodeId, PaxosMsg<Cmd>)>,
                            delivered: &mut Vec<Vec<(SeqNo, Cmd)>>| {
            for step in steps {
                match step {
                    Step::Send { to, msg } => queue.push_back((index_of(to), nodes[origin], msg)),
                    Step::Broadcast { msg } => {
                        for (i, n) in nodes.iter().enumerate() {
                            if i != origin {
                                queue.push_back((index_of(*n), nodes[origin], msg.clone()));
                            }
                        }
                    }
                    Step::Deliver { seq, command } => delivered[origin].push((seq, command)),
                    Step::ViewChanged { .. } | Step::InstallSnapshot { .. } => {}
                    Step::TakeSnapshot { .. } => {} // materialized by the driver below
                }
            }
        };

        // Stand-in for the adapter layer: materialize a (contents-free)
        // snapshot whenever the engine asks for one.
        let absorb_snapshots = |rep: &mut PaxosReplica<Cmd>, steps: &[Step<Cmd, PaxosMsg<Cmd>>]| {
            for step in steps {
                if let Step::TakeSnapshot { seq } = step {
                    rep.store_snapshot(Arc::new(StateSnapshot {
                        seq: *seq,
                        ..StateSnapshot::default()
                    }));
                }
            }
        };

        for (origin, steps) in initial {
            absorb_snapshots(&mut reps[origin], &steps);
            handle_steps(origin, steps, &mut queue, &mut delivered);
        }
        let mut budget = 100_000;
        while let Some((to, from, msg)) = queue.pop_front() {
            budget -= 1;
            assert!(budget > 0, "message storm");
            if down.contains(&to) {
                continue;
            }
            let steps = reps[to].on_message(from, msg);
            absorb_snapshots(&mut reps[to], &steps);
            handle_steps(to, steps, &mut queue, &mut delivered);
        }
        delivered
    }

    #[test]
    fn single_command_commits_on_all_replicas() {
        let (nodes, mut reps) = make_domain(3);
        let steps = reps[0].propose(b"tx1".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        for d in &delivered {
            assert_eq!(d, &vec![(1, b"tx1".to_vec())]);
        }
    }

    #[test]
    fn non_primary_propose_is_a_noop() {
        let (_nodes, mut reps) = make_domain(3);
        assert!(reps[1].propose(b"x".to_vec()).is_empty());
        assert!(!reps[1].is_primary());
        assert!(reps[0].is_primary());
    }

    #[test]
    fn commands_deliver_in_order_across_replicas() {
        let (nodes, mut reps) = make_domain(5);
        let mut initial = Vec::new();
        for i in 0..10u8 {
            initial.push((0, reps[0].propose(vec![i])));
        }
        let delivered = run_network(&nodes, &mut reps, initial, &[]);
        let expected: Vec<(SeqNo, Cmd)> = (0..10u8).map(|i| (i as u64 + 1, vec![i])).collect();
        for d in &delivered {
            assert_eq!(d, &expected);
        }
    }

    #[test]
    fn commits_with_f_backups_down() {
        // 5 replicas tolerate 2 crash failures; with 2 backups down the
        // command still commits everywhere alive.
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"tx".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[3, 4]);
        for (i, d) in delivered.iter().enumerate() {
            if i == 3 || i == 4 {
                assert!(d.is_empty());
            } else {
                assert_eq!(d.len(), 1);
            }
        }
    }

    #[test]
    fn no_commit_without_majority() {
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"tx".to_vec());
        // 3 of 5 down: only the primary and one backup remain -> no majority.
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[2, 3, 4]);
        assert!(delivered.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn view_change_elects_next_leader_and_preserves_committed_entries() {
        let (nodes, mut reps) = make_domain(3);
        // Commit one command normally.
        let steps = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, steps)], &[]);

        // Primary (index 0) goes silent.  Backups time out.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        let _ = run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);

        // Node 1 is the new primary of view 1.
        assert_eq!(reps[1].view(), 1);
        assert!(reps[1].is_primary());
        assert_eq!(reps[2].view(), 1);
        assert_eq!(reps[1].last_delivered(), 1);

        // New proposals still commit among the live replicas.
        let steps = reps[1].propose(b"after-vc".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(1, steps)], &[0]);
        assert!(delivered[1].iter().any(|(_, c)| c == b"after-vc"));
        assert!(delivered[2].iter().any(|(_, c)| c == b"after-vc"));
    }

    #[test]
    fn view_change_recovers_uncommitted_accepted_entry() {
        let (nodes, mut reps) = make_domain(3);
        // The primary proposes but only replica 1 receives the Accept (we
        // simulate by delivering manually), then the primary crashes.
        let steps = reps[0].propose(b"maybe".to_vec());
        // Extract the broadcast Accept and deliver it to replica 1 only.
        let accept = steps
            .iter()
            .find_map(|s| match s {
                Step::Broadcast { msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let _ = reps[1].on_message(nodes[0], accept);

        // View change without the old primary.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        let delivered = run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);
        // The possibly-committed entry is re-proposed and commits in view 1.
        assert!(delivered[1].iter().any(|(_, c)| c == b"maybe"));
        assert!(delivered[2].iter().any(|(_, c)| c == b"maybe"));
        assert_eq!(reps[1].view(), 1);
    }

    #[test]
    fn primary_does_not_suspect_itself() {
        let (_nodes, mut reps) = make_domain(3);
        assert!(reps[0].on_progress_timeout().is_empty());
    }

    #[test]
    fn repeated_timeouts_escalate_past_a_crashed_candidate() {
        // 5 replicas tolerate f = 2.  Both the leader (0) and the next
        // round-robin candidate (1) crash: the first timeout round targets
        // view 1 and stalls (its candidate is dead); the second must
        // escalate to view 2 instead of retrying view 1 forever.
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, steps)], &[]);

        let vc: InitialSteps = (2..5).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 0, "view 1 must not form without node 1");

        let vc: InitialSteps = (2..5).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 2);
        assert!(reps[2].is_primary());
        assert_eq!(reps[3].view(), 2);

        // Progress resumes under the view-2 leader with 3 of 5 alive.
        let steps = reps[2].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(2, steps)], &[0, 1]);
        assert!(delivered[3].iter().any(|(_, c)| c == b"after"));
        assert!(delivered[4].iter().any(|(_, c)| c == b"after"));
        // The entry committed in view 0 survived both rounds.
        assert!(reps[2].last_delivered() >= 2);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let (nodes, mut reps) = make_domain(3);
        // Move everyone to view 1.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);
        // A stale Accept from the deposed primary in view 0 is ignored.
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 9,
                cmd: b"stale".to_vec(),
            },
        );
        assert!(steps.is_empty());
    }

    #[test]
    fn backlog_counts_uncommitted_slots() {
        let (_nodes, mut reps) = make_domain(3);
        let _ = reps[0].propose(b"a".to_vec());
        assert_eq!(reps[0].backlog(), 1);
    }

    fn make_checkpointed_domain(n: u16, interval: u64) -> (Vec<NodeId>, Vec<PaxosReplica<Cmd>>) {
        let (nodes, reps) = make_domain(n);
        let reps = reps
            .into_iter()
            .map(|r| r.with_checkpointing(CheckpointConfig::every(interval)))
            .collect();
        (nodes, reps)
    }

    #[test]
    fn checkpointing_garbage_collects_slots_and_bounds_view_change_votes() {
        let (nodes, mut reps) = make_checkpointed_domain(3, 4);
        let initial: InitialSteps = (0..10u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        for r in &reps {
            assert_eq!(r.last_delivered(), 10);
            assert_eq!(r.stable_checkpoint(), 8, "floor 8 must have stabilised");
            assert!(
                r.log_len() <= 2,
                "slots below the checkpoint must be collected (len {})",
                r.log_len()
            );
            assert!(r.vote_entries() <= 2);
        }
        // The actual view-change vote payload is bounded by the stable
        // checkpoint: `history − checkpoint` entries, not O(history).
        let steps = reps[1].on_progress_timeout();
        let vote = steps
            .iter()
            .find_map(|s| match s {
                Step::Broadcast {
                    msg:
                        PaxosMsg::ViewChange {
                            accepted,
                            checkpoint,
                            ..
                        },
                } => Some((accepted.len(), *checkpoint)),
                _ => None,
            })
            .expect("timeout broadcasts a view-change vote");
        assert_eq!(vote.1, 8);
        assert!(
            vote.0 <= 2,
            "vote carried {} entries for a history of 10 with checkpoint 8",
            vote.0
        );
    }

    #[test]
    fn unbounded_checkpointing_retains_full_history_in_votes() {
        let (nodes, mut reps) = make_domain(3);
        let initial: InitialSteps = (0..10u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        assert_eq!(reps[1].stable_checkpoint(), 0);
        assert_eq!(reps[1].vote_entries(), 10, "legacy votes carry everything");
    }

    #[test]
    fn gap_stalled_replica_catches_up_via_state_transfer() {
        let (nodes, mut reps) = make_checkpointed_domain(3, 2);
        // Replica 2 misses six committed entries; the survivors stabilise
        // checkpoint 6 and garbage-collect the slots below it, so the gap
        // can never be filled by re-accepts.
        let initial: InitialSteps = (0..6u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[2]);
        assert_eq!(reps[0].stable_checkpoint(), 6);
        assert_eq!(reps[2].last_delivered(), 0);

        // On recovery the replica hears a checkpoint announcement (frontier
        // evidence), requests state, and replays the whole missed prefix.
        let steps = reps[2].on_message(
            nodes[0],
            PaxosMsg::Checkpoint {
                seq: 6,
                digest: saguaro_crypto::sha256(b"modelled"),
            },
        );
        assert!(
            steps.iter().any(|s| matches!(
                s,
                Step::Send {
                    msg: PaxosMsg::StateRequest { above: 0 },
                    ..
                }
            )),
            "gap-stalled replica must fetch state: {steps:?}"
        );
        let delivered = run_network(&nodes, &mut reps, vec![(2, steps)], &[]);
        assert_eq!(
            delivered[2],
            (0..6u8)
                .map(|i| (i as u64 + 1, vec![i]))
                .collect::<Vec<_>>(),
            "the transferred entries must replay in order"
        );
        assert_eq!(reps[2].last_delivered(), 6);

        // Execution resumes: the next proposal commits on all three.
        let steps = reps[0].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        assert!(delivered[2]
            .iter()
            .any(|(seq, c)| *seq == 7 && c == b"after"));
    }

    fn make_pruned_domain(
        n: u16,
        interval: u64,
        retention: u64,
    ) -> (Vec<NodeId>, Vec<PaxosReplica<Cmd>>) {
        let (nodes, reps) = make_domain(n);
        let reps = reps
            .into_iter()
            .map(|r| {
                r.with_checkpointing(CheckpointConfig::every(interval).with_retention(retention))
            })
            .collect();
        (nodes, reps)
    }

    #[test]
    fn finite_retention_bounds_the_delivered_chain() {
        let (nodes, mut reps) = make_pruned_domain(3, 2, 2);
        let initial: InitialSteps = (0..20u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        for r in &reps {
            assert_eq!(r.last_delivered(), 20);
            assert!(
                r.chain_len() <= 4,
                "retention 2 (interval 2) must bound the chain, got {}",
                r.chain_len()
            );
            assert!(
                r.chain_start() > 1,
                "the chain prefix must have been pruned"
            );
            assert!(r.snapshot_seq().is_some(), "a snapshot must be held");
        }
    }

    #[test]
    fn pruned_responder_serves_snapshot_catch_up() {
        let (nodes, mut reps) = make_pruned_domain(3, 2, 2);
        // Replica 2 misses twelve committed entries; the survivors stabilise
        // checkpoints, materialize snapshots, and prune the chain prefix —
        // a plain entry replay can no longer answer `above = 0`.
        let initial: InitialSteps = (0..12u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[2]);
        assert_eq!(reps[0].last_delivered(), 12);
        assert!(reps[0].chain_start() > 1, "responder's log must be pruned");
        assert_eq!(reps[2].last_delivered(), 0);

        // On recovery the laggard hears a checkpoint announcement, requests
        // state, and is answered with a snapshot plus the retained tail.
        let steps = reps[2].on_message(
            nodes[0],
            PaxosMsg::Checkpoint {
                seq: 12,
                digest: saguaro_crypto::sha256(b"modelled"),
            },
        );
        assert!(
            steps.iter().any(|s| matches!(
                s,
                Step::Send {
                    msg: PaxosMsg::StateRequest { above: 0 },
                    ..
                }
            )),
            "gap-stalled replica must fetch state: {steps:?}"
        );
        let delivered = run_network(&nodes, &mut reps, vec![(2, steps)], &[]);
        assert_eq!(reps[2].last_delivered(), 12);
        assert_eq!(
            reps[2].snapshot_seq().unwrap_or(0) + delivered[2].len() as u64,
            12,
            "snapshot + replayed tail must cover the whole gap"
        );

        // Execution resumes: the next proposal commits on all three.
        let steps = reps[0].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        assert!(delivered[2]
            .iter()
            .any(|(seq, c)| *seq == 13 && c == b"after"));
    }

    #[test]
    fn stale_snapshot_reply_is_ignored() {
        let (nodes, mut reps) = make_pruned_domain(3, 2, 2);
        let initial: InitialSteps = (0..6u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        assert_eq!(reps[1].last_delivered(), 6);
        // A snapshot below the receiver's frontier must change nothing.
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::SnapshotReply {
                snapshot: Arc::new(StateSnapshot {
                    seq: 2,
                    ..StateSnapshot::default()
                }),
                tail: Vec::new(),
                committed_to: 2,
            },
        );
        assert!(
            !steps
                .iter()
                .any(|s| matches!(s, Step::InstallSnapshot { .. } | Step::Deliver { .. })),
            "stale snapshot must not install or deliver: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 6);
    }

    #[test]
    fn view_change_reinstall_discards_acks_given_for_a_different_value() {
        // n = 5, majority 3.  The view-0 leader holds acks {r0, r1} for X at
        // seq 1 (uncommitted).  A view change to view 5 (primary r0 again)
        // merges a *different* value Y for seq 1 — prepared in view 3 by a
        // voter — so the reinstall must not count r1's stale ack for X
        // towards committing Y: two fresh acceptances are still required.
        let (nodes, mut reps) = make_domain(5);
        let _ = reps[0].propose(b"X".to_vec());
        let _ = reps[0].on_message(
            nodes[1],
            PaxosMsg::Accepted {
                view: 0,
                seq: 1,
                digest: b"X".to_vec().digest(),
            },
        );
        // Two peers escalate to view 5 carrying Y accepted in view 3; with
        // r0's own echoed vote that is the 3-vote quorum making r0 leader.
        let vote = |accepted: Vec<(SeqNo, u64, Cmd)>| PaxosMsg::ViewChange {
            new_view: 5,
            accepted,
            last_committed: 0,
            checkpoint: 0,
        };
        let _ = reps[0].on_message(nodes[1], vote(vec![(1, 3, b"Y".to_vec())]));
        let steps = reps[0].on_message(nodes[2], vote(vec![]));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::ViewChanged { view: 5, .. })));
        assert_eq!(reps[0].view(), 5);

        // One fresh acceptance of Y: with r1's stale X-ack wrongly retained
        // this would be the "third" ack and commit Y — it must not.
        let y_digest = b"Y".to_vec().digest();
        let steps = reps[0].on_message(
            nodes[3],
            PaxosMsg::Accepted {
                view: 5,
                seq: 1,
                digest: y_digest,
            },
        );
        assert!(
            !steps.iter().any(|s| matches!(
                s,
                Step::Broadcast {
                    msg: PaxosMsg::Learn { .. }
                }
            )),
            "Y must not commit on one fresh ack plus a stale ack for X"
        );
        // The second fresh acceptance completes a genuine majority.
        let steps = reps[0].on_message(
            nodes[4],
            PaxosMsg::Accepted {
                view: 5,
                seq: 1,
                digest: y_digest,
            },
        );
        assert!(steps.iter().any(|s| matches!(
            s,
            Step::Broadcast {
                msg: PaxosMsg::Learn { seq: 1, .. }
            }
        )));
    }

    #[test]
    fn twin_view_change_votes_are_discarded_and_sender_ignored() {
        // n = 5, majority 3, view-5 leader is r0.  A voter that sends two
        // conflicting votes for the same view is a provable equivocator:
        // both its votes are discarded and it is ignored for that view,
        // but the remaining honest majority still elects the leader.
        let (nodes, mut reps) = make_domain(5);
        let vote = |accepted: Vec<(SeqNo, u64, Cmd)>| PaxosMsg::ViewChange {
            new_view: 5,
            accepted,
            last_committed: 0,
            checkpoint: 0,
        };
        let _ = reps[0].on_message(nodes[1], vote(vec![(1, 3, b"X".to_vec())]));
        let _ = reps[0].on_message(nodes[1], vote(vec![(1, 3, b"Y".to_vec())]));
        assert_eq!(reps[0].certificate_conflicts(), 1);
        // Re-deliveries from the tainted voter no longer count.
        let _ = reps[0].on_message(nodes[1], vote(vec![(1, 3, b"X".to_vec())]));
        assert_eq!(reps[0].view(), 0, "own + tainted vote must not elect");
        // Two honest votes plus r0's own echoed vote reach the majority.
        let _ = reps[0].on_message(nodes[2], vote(Vec::new()));
        let steps = reps[0].on_message(nodes[3], vote(Vec::new()));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::ViewChanged { view: 5, .. })));
        assert_eq!(reps[0].view(), 5);
    }

    #[test]
    fn state_requests_are_ignored_when_transfer_is_disabled() {
        let (nodes, mut reps) = make_domain(3);
        let initial: InitialSteps = (0..3u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        assert!(reps[0]
            .on_message(nodes[2], PaxosMsg::StateRequest { above: 0 })
            .is_empty());
    }
}
