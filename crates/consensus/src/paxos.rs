//! Leader-based Multi-Paxos for crash-only domains.
//!
//! The implementation follows the viewstamped-replication formulation that
//! production Multi-Paxos deployments use: a stable leader (the *primary* of
//! the current view) assigns consecutive sequence numbers to commands and
//! drives a single accept round per command; a majority of `f + 1` out of
//! `2f + 1` acceptances commits the command.  When the leader is suspected
//! (progress timeout), replicas run a view change that elects the next
//! replica round-robin and carries over every possibly-committed entry.
//!
//! Crash-only nodes never lie, so no signatures are exchanged inside the
//! domain; authentication and certification only matter on the cross-domain
//! paths handled by `saguaro-core`.

use crate::interface::{primary_for_view, Command, Step};
use saguaro_crypto::Digest;
use saguaro_types::{NodeId, QuorumSpec, SeqNo};
use std::collections::{BTreeMap, BTreeSet};

/// Messages exchanged by Paxos replicas within one domain.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg<C> {
    /// Leader → replicas: accept this command at this sequence number.
    Accept {
        /// Leader's view.
        view: u64,
        /// Sequence number assigned by the leader.
        seq: SeqNo,
        /// The command.
        cmd: C,
    },
    /// Replica → leader: the command was accepted.
    Accepted {
        /// View in which the command was accepted.
        view: u64,
        /// Sequence number.
        seq: SeqNo,
        /// Digest of the accepted command (sanity check).
        digest: Digest,
    },
    /// Leader → replicas: the command at `seq` is committed.
    Learn {
        /// View.
        view: u64,
        /// Sequence number now committed.
        seq: SeqNo,
    },
    /// Replica → all: start a view change towards `new_view`, carrying every
    /// accepted-but-possibly-uncommitted entry.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// `(seq, view accepted in, command)` for every accepted entry at or
        /// above the sender's commit frontier.
        accepted: Vec<(SeqNo, u64, C)>,
        /// The sender's last executed sequence number.
        last_committed: SeqNo,
    },
    /// New leader → replicas: the new view is active with this log suffix.
    NewView {
        /// The new view number.
        view: u64,
        /// Entries (seq, command) the new leader re-proposes.
        log: Vec<(SeqNo, C)>,
        /// Commit frontier the new leader knows about.
        last_committed: SeqNo,
    },
}

/// Per-sequence bookkeeping at the leader and replicas.
#[derive(Clone, Debug)]
struct Slot<C> {
    cmd: C,
    accepted_in_view: u64,
    /// Replicas (including self) known to have accepted.
    acks: BTreeSet<NodeId>,
    committed: bool,
}

/// One replica's view-change vote: its accepted `(seq, view, command)`
/// entries plus its last delivered sequence number.
type ViewChangeVote<C> = (Vec<(SeqNo, u64, C)>, SeqNo);

/// A Multi-Paxos replica.
#[derive(Clone, Debug)]
pub struct PaxosReplica<C> {
    me: NodeId,
    replicas: Vec<NodeId>,
    quorum: QuorumSpec,
    view: u64,
    /// Next sequence number the leader will assign.
    next_seq: SeqNo,
    /// Last sequence delivered to the application (no gaps).
    last_delivered: SeqNo,
    slots: BTreeMap<SeqNo, Slot<C>>,
    /// Learns that arrived before their Accept (out-of-order delivery),
    /// keyed by sequence number, holding the view the Learn was issued in;
    /// applied once an Accept from that view (or newer) creates the slot.
    pending_learns: BTreeMap<SeqNo, u64>,
    /// View-change votes collected per proposed view.
    view_change_votes: BTreeMap<u64, BTreeMap<NodeId, ViewChangeVote<C>>>,
    /// True while a view change is in progress (stop accepting in old view).
    in_view_change: bool,
    /// Highest view this replica has voted a view change towards.  Repeated
    /// progress timeouts escalate past it, so a view whose would-be leader
    /// is itself crashed cannot wedge the domain.
    highest_vc: u64,
}

impl<C: Command> PaxosReplica<C> {
    /// Creates a replica.  `replicas` must be the same (sorted) list on every
    /// member of the domain.
    pub fn new(me: NodeId, mut replicas: Vec<NodeId>, quorum: QuorumSpec) -> Self {
        replicas.sort();
        Self {
            me,
            replicas,
            quorum,
            view: 0,
            next_seq: 1,
            last_delivered: 0,
            slots: BTreeMap::new(),
            pending_learns: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            in_view_change: false,
            highest_vc: 0,
        }
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary (leader) of the current view.
    pub fn primary(&self) -> NodeId {
        primary_for_view(self.view, &self.replicas)
    }

    /// True if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.me
    }

    /// Last sequence number delivered to the application.
    pub fn last_delivered(&self) -> SeqNo {
        self.last_delivered
    }

    /// Number of commands accepted but not yet delivered.
    pub fn backlog(&self) -> usize {
        self.slots.values().filter(|s| !s.committed).count()
    }

    fn majority(&self) -> usize {
        self.quorum.commit_quorum()
    }

    /// Proposes a command.  Only the primary drives consensus; a backup
    /// returns a `Send` step forwarding the command is the caller's job (the
    /// adapter forwards client requests to the primary).
    pub fn propose(&mut self, cmd: C) -> Vec<Step<C, PaxosMsg<C>>> {
        if !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut slot = Slot {
            cmd: cmd.clone(),
            accepted_in_view: self.view,
            acks: BTreeSet::new(),
            committed: false,
        };
        slot.acks.insert(self.me);
        self.slots.insert(seq, slot);
        let mut steps = vec![Step::Broadcast {
            msg: PaxosMsg::Accept {
                view: self.view,
                seq,
                cmd,
            },
        }];
        // A domain of a single replica (f = 0) commits immediately.
        steps.extend(self.maybe_commit(seq));
        steps
    }

    /// Handles a protocol message from a peer replica.
    pub fn on_message(&mut self, from: NodeId, msg: PaxosMsg<C>) -> Vec<Step<C, PaxosMsg<C>>> {
        match msg {
            PaxosMsg::Accept { view, seq, cmd } => self.on_accept(from, view, seq, cmd),
            PaxosMsg::Accepted { view, seq, digest } => self.on_accepted(from, view, seq, digest),
            PaxosMsg::Learn { view, seq } => self.on_learn(view, seq),
            PaxosMsg::ViewChange {
                new_view,
                accepted,
                last_committed,
            } => self.on_view_change(from, new_view, accepted, last_committed),
            PaxosMsg::NewView {
                view,
                log,
                last_committed,
            } => self.on_new_view(from, view, log, last_committed),
        }
    }

    fn on_accept(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        cmd: C,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view || self.in_view_change || from != primary_for_view(view, &self.replicas)
        {
            return Vec::new();
        }
        if view > self.view {
            // We missed a view change; adopt the newer view.
            self.view = view;
            self.in_view_change = false;
        }
        let digest = cmd.digest();
        let slot = self.slots.entry(seq).or_insert_with(|| Slot {
            cmd: cmd.clone(),
            accepted_in_view: view,
            acks: BTreeSet::new(),
            committed: false,
        });
        slot.cmd = cmd;
        slot.accepted_in_view = view;
        slot.acks.insert(self.me);
        let mut steps = vec![Step::Send {
            to: from,
            msg: PaxosMsg::Accepted { view, seq, digest },
        }];
        if let Some(&learn_view) = self.pending_learns.get(&seq) {
            // Only an Accept from the Learn's view (or newer) carries the
            // command that view actually chose; an older-view Accept must
            // not be committed under a newer view's Learn.
            if view >= learn_view {
                self.pending_learns.remove(&seq);
                if let Some(slot) = self.slots.get_mut(&seq) {
                    slot.committed = true;
                }
                steps.extend(self.drain_deliveries());
            }
        }
        steps
    }

    fn on_accepted(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        digest: Digest,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view != self.view || !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.cmd.digest() != digest || slot.committed {
            return Vec::new();
        }
        slot.acks.insert(from);
        self.maybe_commit(seq)
    }

    /// Commits `seq` if a majority accepted it, emitting Learn + deliveries.
    fn maybe_commit(&mut self, seq: SeqNo) -> Vec<Step<C, PaxosMsg<C>>> {
        let majority = self.majority();
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.committed || slot.acks.len() < majority {
            return Vec::new();
        }
        slot.committed = true;
        let mut steps = vec![Step::Broadcast {
            msg: PaxosMsg::Learn { view, seq },
        }];
        steps.extend(self.drain_deliveries());
        steps
    }

    fn on_learn(&mut self, view: u64, seq: SeqNo) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view {
            return Vec::new();
        }
        match self.slots.get_mut(&seq) {
            // A Learn issued in view v certifies the value *accepted in v*
            // (or re-proposed into a later view).  A slot filled in an older
            // view may hold a deposed leader's divergent proposal — e.g. one
            // it made while partitioned away — so committing it here would
            // fork the log.
            Some(slot) if slot.accepted_in_view >= view => slot.committed = true,
            // Slot missing (Learn overtook its Accept) or stale: remember
            // the commit and apply it when an Accept from the Learn's view
            // (or newer) supplies the certified value.
            _ => {
                let entry = self.pending_learns.entry(seq).or_insert(view);
                *entry = (*entry).max(view);
            }
        }
        self.drain_deliveries()
    }

    /// Emits `Deliver` steps for every committed command that directly follows
    /// the last delivered sequence number.
    fn drain_deliveries(&mut self) -> Vec<Step<C, PaxosMsg<C>>> {
        let mut steps = Vec::new();
        loop {
            let next = self.last_delivered + 1;
            match self.slots.get(&next) {
                Some(slot) if slot.committed => {
                    steps.push(Step::Deliver {
                        seq: next,
                        command: slot.cmd.clone(),
                    });
                    self.last_delivered = next;
                }
                _ => break,
            }
        }
        steps
    }

    /// Called by the adapter when the progress timer fires while requests are
    /// outstanding: suspect the primary and start a view change.
    pub fn on_progress_timeout(&mut self) -> Vec<Step<C, PaxosMsg<C>>> {
        if self.is_primary() && !self.in_view_change {
            // The primary itself does not suspect itself.
            return Vec::new();
        }
        // Escalate past any view change already attempted: if the candidate
        // leader of the last attempt is itself dead, the next timeout must
        // move on to the following replica rather than retry forever.
        self.start_view_change(self.view.max(self.highest_vc) + 1)
    }

    fn start_view_change(&mut self, new_view: u64) -> Vec<Step<C, PaxosMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.in_view_change = true;
        self.highest_vc = self.highest_vc.max(new_view);
        // The vote carries *every* slot, delivered ones included: quorum
        // intersection then guarantees the new leader's merge sees each
        // chosen value even when the only voter still holding it has already
        // executed it (a delivered-entries filter here once let a new leader
        // re-assign an executed sequence number to a fresh command, forking
        // stragglers).
        let accepted: Vec<(SeqNo, u64, C)> = self
            .slots
            .iter()
            .map(|(seq, slot)| (*seq, slot.accepted_in_view, slot.cmd.clone()))
            .collect();
        let msg = PaxosMsg::ViewChange {
            new_view,
            accepted: accepted.clone(),
            last_committed: self.last_delivered,
        };
        // Record our own vote.
        let mut steps =
            self.record_view_change_vote(self.me, new_view, accepted, self.last_delivered);
        steps.insert(0, Step::Broadcast { msg });
        steps
    }

    fn on_view_change(
        &mut self,
        from: NodeId,
        new_view: u64,
        accepted: Vec<(SeqNo, u64, C)>,
        last_committed: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        let mut steps = Vec::new();
        // Join the view change ourselves (echo) the first time we hear of
        // it, and again whenever a peer escalates beyond our last attempt.
        if !self.in_view_change || new_view > self.highest_vc {
            steps.extend(self.start_view_change(new_view));
        }
        steps.extend(self.record_view_change_vote(from, new_view, accepted, last_committed));
        steps
    }

    fn record_view_change_vote(
        &mut self,
        from: NodeId,
        new_view: u64,
        accepted: Vec<(SeqNo, u64, C)>,
        last_committed: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(from, (accepted, last_committed));
        let votes = &self.view_change_votes[&new_view];
        let i_am_new_primary = primary_for_view(new_view, &self.replicas) == self.me;
        if !i_am_new_primary || votes.len() < self.majority() {
            return Vec::new();
        }
        // Become the leader of the new view: merge the accepted entries,
        // preferring the value accepted in the highest view per slot.
        let mut merged: BTreeMap<SeqNo, (u64, C)> = BTreeMap::new();
        let mut frontier = 0;
        let mut floor = SeqNo::MAX;
        for (acc, lc) in votes.values() {
            frontier = frontier.max(*lc);
            floor = floor.min(*lc);
            for (seq, v, cmd) in acc {
                match merged.get(seq) {
                    Some((existing_view, _)) if existing_view >= v => {}
                    _ => {
                        merged.insert(*seq, (*v, cmd.clone()));
                    }
                }
            }
        }
        self.view = new_view;
        self.in_view_change = false;
        self.view_change_votes.remove(&new_view);

        // Re-install the merged log locally and recompute next_seq.  The log
        // starts at the *lowest* voter frontier, not the highest: a voter
        // that has not yet executed an already-chosen entry needs its value
        // re-proposed (re-accepting an executed entry elsewhere is a cheap
        // no-op), and followers only treat re-accepted entries as
        // committed — never whatever stale value an old view left in a slot.
        let log: Vec<(SeqNo, C)> = merged
            .iter()
            .filter(|(seq, _)| **seq > floor)
            .map(|(seq, (_, cmd))| (*seq, cmd.clone()))
            .collect();
        for (seq, cmd) in &log {
            let slot = self.slots.entry(*seq).or_insert_with(|| Slot {
                cmd: cmd.clone(),
                accepted_in_view: new_view,
                acks: BTreeSet::new(),
                committed: false,
            });
            slot.cmd = cmd.clone();
            slot.accepted_in_view = new_view;
            slot.acks.insert(self.me);
        }
        self.next_seq = self
            .slots
            .keys()
            .max()
            .copied()
            .unwrap_or(frontier)
            .max(frontier)
            + 1;

        let mut steps = vec![
            Step::ViewChanged {
                view: new_view,
                primary: self.me,
            },
            Step::Broadcast {
                msg: PaxosMsg::NewView {
                    view: new_view,
                    log: log.clone(),
                    last_committed: frontier,
                },
            },
        ];
        // Single-replica domains (or f=0) may be able to commit immediately.
        let seqs: Vec<SeqNo> = log.iter().map(|(s, _)| *s).collect();
        for s in seqs {
            steps.extend(self.maybe_commit(s));
        }
        steps
    }

    fn on_new_view(
        &mut self,
        from: NodeId,
        view: u64,
        log: Vec<(SeqNo, C)>,
        last_committed: SeqNo,
    ) -> Vec<Step<C, PaxosMsg<C>>> {
        if view < self.view || from != primary_for_view(view, &self.replicas) {
            return Vec::new();
        }
        self.view = view;
        self.in_view_change = false;
        let mut steps = vec![Step::ViewChanged {
            view,
            primary: from,
        }];
        // Accept every entry the new leader re-proposed.
        for (seq, cmd) in log {
            let digest = cmd.digest();
            let slot = self.slots.entry(seq).or_insert_with(|| Slot {
                cmd: cmd.clone(),
                accepted_in_view: view,
                acks: BTreeSet::new(),
                committed: false,
            });
            slot.cmd = cmd;
            slot.accepted_in_view = view;
            steps.push(Step::Send {
                to: from,
                msg: PaxosMsg::Accepted { view, seq, digest },
            });
        }
        // Catch up the commit frontier the leader advertised — but only
        // through entries re-accepted in this very view (the log installed
        // just above).  A slot still holding an *older* view's value may be
        // a deposed leader's divergent proposal; blindly committing it here
        // once forked a recovered replica's log.
        for seq in (self.last_delivered + 1)..=last_committed {
            if let Some(slot) = self.slots.get_mut(&seq) {
                if slot.accepted_in_view >= view {
                    slot.committed = true;
                }
            }
        }
        steps.extend(self.drain_deliveries());
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::{DomainId, FailureModel};
    use std::collections::VecDeque;

    type Cmd = Vec<u8>;

    fn make_domain(n: u16) -> (Vec<NodeId>, Vec<PaxosReplica<Cmd>>) {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
        let quorum = QuorumSpec::for_size(FailureModel::Crash, n as usize);
        let reps = nodes
            .iter()
            .map(|id| PaxosReplica::new(*id, nodes.clone(), quorum))
            .collect();
        (nodes, reps)
    }

    /// Per-origin initial protocol steps fed into the test network.
    type InitialSteps = Vec<(usize, Vec<Step<Cmd, PaxosMsg<Cmd>>>)>;

    #[test]
    fn learn_arriving_before_accept_still_commits() {
        let (nodes, mut reps) = make_domain(3);
        // Replica 1 sees the leader's Learn before the Accept it refers to
        // (reordered network).  The commit must be buffered, not dropped.
        let steps = reps[1].on_message(nodes[0], PaxosMsg::Learn { view: 0, seq: 1 });
        assert!(steps.is_empty(), "nothing deliverable yet");
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"ooo".to_vec(),
            },
        );
        assert!(
            steps
                .iter()
                .any(|s| matches!(s, Step::Deliver { seq: 1, .. })),
            "buffered learn was not applied: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 1);
    }

    #[test]
    fn learn_does_not_commit_a_value_accepted_in_an_older_view() {
        // Replica 1 accepted a value from the view-0 leader, then missed the
        // view change.  When the view-1 leader's Learn for the same slot
        // arrives, the locally stored view-0 value may differ from what view
        // 1 chose — committing it would fork the log.  The commit must be
        // buffered until the view-1 Accept supplies the certified value.
        let (nodes, mut reps) = make_domain(3);
        let _ = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"deposed".to_vec(),
            },
        );
        let steps = reps[1].on_message(nodes[1], PaxosMsg::Learn { view: 1, seq: 1 });
        assert!(
            !steps.iter().any(|s| matches!(s, Step::Deliver { .. })),
            "stale slot must not commit under a newer view's Learn: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 0);
        // The view-1 Accept carries what view 1 actually chose; only then
        // does the buffered commit apply — to the certified value.
        let steps = reps[1].on_message(
            nodes[1],
            PaxosMsg::Accept {
                view: 1,
                seq: 1,
                cmd: b"chosen".to_vec(),
            },
        );
        let delivered: Vec<&Cmd> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Deliver { command, .. } => Some(command),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![&b"chosen".to_vec()]);
    }

    #[test]
    fn buffered_learn_from_newer_view_does_not_commit_an_old_view_accept() {
        let (nodes, mut reps) = make_domain(3);
        // A Learn issued in view 1 overtakes everything else.
        let steps = reps[1].on_message(nodes[0], PaxosMsg::Learn { view: 1, seq: 1 });
        assert!(steps.is_empty());
        // A stale view-0 Accept for the same seq must not be committed under
        // the newer view's Learn: view 1 may have chosen a different command.
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 1,
                cmd: b"stale".to_vec(),
            },
        );
        assert!(
            !steps.iter().any(|s| matches!(s, Step::Deliver { .. })),
            "stale accept must not deliver: {steps:?}"
        );
        assert_eq!(reps[1].last_delivered(), 0);
    }

    /// Routes every Send/Broadcast step until quiescence; returns delivered
    /// (seq, cmd) per replica index.  `down` replicas neither send nor receive.
    fn run_network(
        nodes: &[NodeId],
        reps: &mut [PaxosReplica<Cmd>],
        initial: InitialSteps,
        down: &[usize],
    ) -> Vec<Vec<(SeqNo, Cmd)>> {
        let mut delivered = vec![Vec::new(); reps.len()];
        let mut queue: VecDeque<(usize, NodeId, PaxosMsg<Cmd>)> = VecDeque::new();
        let index_of = |id: NodeId| nodes.iter().position(|n| *n == id).unwrap();

        let handle_steps = |origin: usize,
                            steps: Vec<Step<Cmd, PaxosMsg<Cmd>>>,
                            queue: &mut VecDeque<(usize, NodeId, PaxosMsg<Cmd>)>,
                            delivered: &mut Vec<Vec<(SeqNo, Cmd)>>| {
            for step in steps {
                match step {
                    Step::Send { to, msg } => queue.push_back((index_of(to), nodes[origin], msg)),
                    Step::Broadcast { msg } => {
                        for (i, n) in nodes.iter().enumerate() {
                            if i != origin {
                                queue.push_back((index_of(*n), nodes[origin], msg.clone()));
                            }
                        }
                    }
                    Step::Deliver { seq, command } => delivered[origin].push((seq, command)),
                    Step::ViewChanged { .. } => {}
                }
            }
        };

        for (origin, steps) in initial {
            handle_steps(origin, steps, &mut queue, &mut delivered);
        }
        let mut budget = 100_000;
        while let Some((to, from, msg)) = queue.pop_front() {
            budget -= 1;
            assert!(budget > 0, "message storm");
            if down.contains(&to) {
                continue;
            }
            let steps = reps[to].on_message(from, msg);
            handle_steps(to, steps, &mut queue, &mut delivered);
        }
        delivered
    }

    #[test]
    fn single_command_commits_on_all_replicas() {
        let (nodes, mut reps) = make_domain(3);
        let steps = reps[0].propose(b"tx1".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        for d in &delivered {
            assert_eq!(d, &vec![(1, b"tx1".to_vec())]);
        }
    }

    #[test]
    fn non_primary_propose_is_a_noop() {
        let (_nodes, mut reps) = make_domain(3);
        assert!(reps[1].propose(b"x".to_vec()).is_empty());
        assert!(!reps[1].is_primary());
        assert!(reps[0].is_primary());
    }

    #[test]
    fn commands_deliver_in_order_across_replicas() {
        let (nodes, mut reps) = make_domain(5);
        let mut initial = Vec::new();
        for i in 0..10u8 {
            initial.push((0, reps[0].propose(vec![i])));
        }
        let delivered = run_network(&nodes, &mut reps, initial, &[]);
        let expected: Vec<(SeqNo, Cmd)> = (0..10u8).map(|i| (i as u64 + 1, vec![i])).collect();
        for d in &delivered {
            assert_eq!(d, &expected);
        }
    }

    #[test]
    fn commits_with_f_backups_down() {
        // 5 replicas tolerate 2 crash failures; with 2 backups down the
        // command still commits everywhere alive.
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"tx".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[3, 4]);
        for (i, d) in delivered.iter().enumerate() {
            if i == 3 || i == 4 {
                assert!(d.is_empty());
            } else {
                assert_eq!(d.len(), 1);
            }
        }
    }

    #[test]
    fn no_commit_without_majority() {
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"tx".to_vec());
        // 3 of 5 down: only the primary and one backup remain -> no majority.
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[2, 3, 4]);
        assert!(delivered.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn view_change_elects_next_leader_and_preserves_committed_entries() {
        let (nodes, mut reps) = make_domain(3);
        // Commit one command normally.
        let steps = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, steps)], &[]);

        // Primary (index 0) goes silent.  Backups time out.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        let _ = run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);

        // Node 1 is the new primary of view 1.
        assert_eq!(reps[1].view(), 1);
        assert!(reps[1].is_primary());
        assert_eq!(reps[2].view(), 1);
        assert_eq!(reps[1].last_delivered(), 1);

        // New proposals still commit among the live replicas.
        let steps = reps[1].propose(b"after-vc".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(1, steps)], &[0]);
        assert!(delivered[1].iter().any(|(_, c)| c == b"after-vc"));
        assert!(delivered[2].iter().any(|(_, c)| c == b"after-vc"));
    }

    #[test]
    fn view_change_recovers_uncommitted_accepted_entry() {
        let (nodes, mut reps) = make_domain(3);
        // The primary proposes but only replica 1 receives the Accept (we
        // simulate by delivering manually), then the primary crashes.
        let steps = reps[0].propose(b"maybe".to_vec());
        // Extract the broadcast Accept and deliver it to replica 1 only.
        let accept = steps
            .iter()
            .find_map(|s| match s {
                Step::Broadcast { msg } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let _ = reps[1].on_message(nodes[0], accept);

        // View change without the old primary.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        let delivered = run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);
        // The possibly-committed entry is re-proposed and commits in view 1.
        assert!(delivered[1].iter().any(|(_, c)| c == b"maybe"));
        assert!(delivered[2].iter().any(|(_, c)| c == b"maybe"));
        assert_eq!(reps[1].view(), 1);
    }

    #[test]
    fn primary_does_not_suspect_itself() {
        let (_nodes, mut reps) = make_domain(3);
        assert!(reps[0].on_progress_timeout().is_empty());
    }

    #[test]
    fn repeated_timeouts_escalate_past_a_crashed_candidate() {
        // 5 replicas tolerate f = 2.  Both the leader (0) and the next
        // round-robin candidate (1) crash: the first timeout round targets
        // view 1 and stalls (its candidate is dead); the second must
        // escalate to view 2 instead of retrying view 1 forever.
        let (nodes, mut reps) = make_domain(5);
        let steps = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, steps)], &[]);

        let vc: InitialSteps = (2..5).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 0, "view 1 must not form without node 1");

        let vc: InitialSteps = (2..5).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 2);
        assert!(reps[2].is_primary());
        assert_eq!(reps[3].view(), 2);

        // Progress resumes under the view-2 leader with 3 of 5 alive.
        let steps = reps[2].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(2, steps)], &[0, 1]);
        assert!(delivered[3].iter().any(|(_, c)| c == b"after"));
        assert!(delivered[4].iter().any(|(_, c)| c == b"after"));
        // The entry committed in view 0 survived both rounds.
        assert!(reps[2].last_delivered() >= 2);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let (nodes, mut reps) = make_domain(3);
        // Move everyone to view 1.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        run_network(&nodes, &mut reps, vec![(1, vc1), (2, vc2)], &[0]);
        // A stale Accept from the deposed primary in view 0 is ignored.
        let steps = reps[1].on_message(
            nodes[0],
            PaxosMsg::Accept {
                view: 0,
                seq: 9,
                cmd: b"stale".to_vec(),
            },
        );
        assert!(steps.is_empty());
    }

    #[test]
    fn backlog_counts_uncommitted_slots() {
        let (_nodes, mut reps) = make_domain(3);
        let _ = reps[0].propose(b"a".to_vec());
        assert_eq!(reps[0].backlog(), 1);
    }
}
