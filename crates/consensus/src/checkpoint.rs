//! Checkpoint agreement and state-transfer bookkeeping shared by both
//! consensus engines.
//!
//! A [`CheckpointKeeper`] tracks three things for one replica:
//!
//! 1. **Stable checkpoints.**  Every `interval` deliveries a replica
//!    announces its executed floor (a `Checkpoint` protocol message); once a
//!    commit quorum has announced the same floor *and* this replica has
//!    itself executed it, the floor becomes *stable* and the engine
//!    garbage-collects every slot at or below it.  View-change votes are
//!    bounded by the stable checkpoint, so vote payloads and slot maps grow
//!    with `history − checkpoint` instead of `O(history)`.
//! 2. **Commit-frontier hints.**  Checkpoint announcements, `Learn`s and
//!    `NewView`s all certify that sequence numbers beyond this replica's
//!    delivery frontier are committed somewhere.  The keeper remembers the
//!    highest such hint and which peer evidenced it.
//! 3. **State-transfer pacing.**  When the hint runs ahead of the local
//!    frontier and the next slot cannot commit locally (its entries may have
//!    been garbage-collected by every peer's slot map), the replica is
//!    *gap-stalled* and must fetch the missing committed entries from an
//!    up-to-date peer (`StateRequest` / `StateReply`, the viewstamped
//!    replication catch-up).  The keeper paces those requests so a stall
//!    produces one request per new piece of evidence, not a request storm.
//!
//! The keeper is configuration-driven: under [`CheckpointConfig::legacy`]
//! (the default) a Paxos engine keeps no checkpoints at all and a PBFT
//! engine keeps its historical built-in interval, so every pre-subsystem
//! golden run is reproduced bit for bit.

use saguaro_types::{CheckpointConfig, NodeId, SeqNo};
use std::collections::{BTreeMap, BTreeSet};

/// Per-replica checkpoint and state-transfer bookkeeping.
#[derive(Clone, Debug)]
pub struct CheckpointKeeper {
    /// Deliveries between announcements; `None` disables announcements.
    interval: Option<SeqNo>,
    /// Whether gap-stalled replicas fetch missing entries from peers.
    state_transfer: bool,
    /// The last stable (quorum-certified, locally executed) checkpoint.
    stable: SeqNo,
    /// Announcement votes per floor, including our own.
    votes: BTreeMap<SeqNo, BTreeSet<NodeId>>,
    /// Highest sequence number some peer evidenced as committed.
    hint: SeqNo,
    /// The peer that evidenced [`CheckpointKeeper::hint`].
    hint_from: Option<NodeId>,
    /// `(local frontier, hint)` at the time of the last state request, used
    /// to pace re-requests: a new request goes out only when the frontier
    /// moved (previous transfer applied) or the hint grew (new evidence).
    requested: Option<(SeqNo, SeqNo)>,
    /// Retention window below the stable checkpoint; `None` keeps full
    /// history (no snapshots, no pruning — the historical pipeline).
    retention: Option<u64>,
    /// Highest executed floor each member (including this replica) has ever
    /// announced — the evidence base for the prune floor.
    peer_floors: BTreeMap<NodeId, SeqNo>,
}

impl CheckpointKeeper {
    /// Builds the keeper for one engine.  `legacy_interval` is the interval
    /// the engine historically ran with (`None` for Paxos, 128 for PBFT);
    /// it applies only under [`CheckpointConfig::legacy`].
    pub fn new(config: CheckpointConfig, legacy_interval: Option<SeqNo>) -> Self {
        let interval = if config.is_active() {
            Some(config.interval)
        } else if config.interval == 0 {
            legacy_interval
        } else {
            None // unbounded: no checkpoints at all
        };
        Self {
            interval,
            state_transfer: config.state_transfer,
            stable: 0,
            votes: BTreeMap::new(),
            hint: 0,
            hint_from: None,
            requested: None,
            retention: config.prunes().then_some(config.retention),
            peer_floors: BTreeMap::new(),
        }
    }

    /// The last stable checkpoint.
    pub fn stable(&self) -> SeqNo {
        self.stable
    }

    /// Whether state transfer is enabled.
    pub fn state_transfer_enabled(&self) -> bool {
        self.state_transfer
    }

    /// True if this configuration materializes snapshots and prunes
    /// entry-grained state (finite retention on an active, transfer-serving
    /// configuration).
    pub fn prunes(&self) -> bool {
        self.retention.is_some()
    }

    /// The highest floor every member is known to have executed: the minimum
    /// over all announced floors once each of the domain's `members` has
    /// announced at least once, `0` before that (no evidence about the
    /// silent members).
    pub fn lowest_peer_floor(&self, members: usize) -> SeqNo {
        if self.peer_floors.len() >= members {
            self.peer_floors.values().copied().min().unwrap_or(0)
        } else {
            0
        }
    }

    /// The sequence number at or below which entry-grained state (delivered
    /// logs, chains, learn slots) may be discarded, for a domain of
    /// `members` replicas.
    ///
    /// Everything below the lowest announced peer floor is fetchable by no
    /// correct future `StateRequest` (a replica never requests below its own
    /// announced floor), and everything below `stable − retention` is
    /// covered by the snapshot taken at the stable checkpoint — so the floor
    /// is the *higher* of the two, clamped to the stable checkpoint.  The
    /// retention term keeps memory flat when a crashed peer's floor freezes;
    /// its eventual catch-up is served from the snapshot.  Always `0` when
    /// pruning is off.
    pub fn prune_floor(&self, members: usize) -> SeqNo {
        let Some(retention) = self.retention else {
            return 0;
        };
        self.lowest_peer_floor(members)
            .max(self.stable.saturating_sub(retention))
            .min(self.stable)
    }

    /// True if a checkpoint announcement is due after delivering `seq`.
    pub fn announces_at(&self, seq: SeqNo) -> bool {
        match self.interval {
            Some(interval) => seq.is_multiple_of(interval),
            None => false,
        }
    }

    /// Records one replica's announcement of executed floor `seq`.  Returns
    /// `true` if the floor just became stable — the caller must then
    /// garbage-collect its slots at or below [`CheckpointKeeper::stable`].
    /// `last_delivered` gates stabilisation on local execution: a floor this
    /// replica has not reached yet stays pending (the votes are kept).
    pub fn record_vote(
        &mut self,
        from: NodeId,
        seq: SeqNo,
        quorum: usize,
        last_delivered: SeqNo,
    ) -> bool {
        // Every announcement — even a stale one — evidences the announcer's
        // executed floor for prune-floor purposes.
        let floor = self.peer_floors.entry(from).or_insert(0);
        *floor = (*floor).max(seq);
        if seq <= self.stable {
            return false;
        }
        let votes = self.votes.entry(seq).or_default();
        votes.insert(from);
        if votes.len() >= quorum && last_delivered >= seq {
            self.stable = seq;
            self.votes.retain(|s, _| *s > seq);
            return true;
        }
        false
    }

    /// Adopts an externally certified floor (a `NewView`'s checkpoint): the
    /// new primary proved a quorum stabilised it.
    pub fn adopt_stable(&mut self, seq: SeqNo) {
        if seq > self.stable {
            self.stable = seq;
            self.votes.retain(|s, _| *s > seq);
        }
    }

    /// Notes evidence that `seq` is committed somewhere, remembering `from`
    /// as a peer worth fetching state from.
    pub fn note_hint(&mut self, seq: SeqNo, from: NodeId) {
        if seq > self.hint {
            self.hint = seq;
            self.hint_from = Some(from);
        }
    }

    /// The highest committed sequence number evidenced by peers.
    pub fn hint(&self) -> SeqNo {
        self.hint
    }

    /// Decides whether a gap-stalled replica should fetch state now.
    /// `frontier` is the local delivery frontier; `next_commits_locally`
    /// says whether the slot right above it is already committed locally
    /// (then normal draining will make progress and no transfer is needed).
    /// Returns the peer to ask; the caller must send
    /// `StateRequest { above: frontier }` to it.
    pub fn should_request(
        &mut self,
        frontier: SeqNo,
        next_commits_locally: bool,
    ) -> Option<NodeId> {
        if !self.state_transfer || next_commits_locally || self.hint <= frontier {
            return None;
        }
        if let Some((at_frontier, at_hint)) = self.requested {
            if frontier <= at_frontier && self.hint <= at_hint {
                return None; // nothing changed since the last request
            }
        }
        let peer = self.hint_from?;
        self.requested = Some((frontier, self.hint));
        Some(peer)
    }

    /// Clears the pacing state after a transfer applied (so the next stall
    /// re-requests immediately).
    pub fn transfer_applied(&mut self) {
        self.requested = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::DomainId;

    fn node(i: u16) -> NodeId {
        NodeId::new(DomainId::new(1, 0), i)
    }

    #[test]
    fn legacy_config_keeps_the_engine_defaults() {
        let paxos = CheckpointKeeper::new(CheckpointConfig::legacy(), None);
        assert!(!paxos.announces_at(128));
        assert!(!paxos.state_transfer_enabled());
        let pbft = CheckpointKeeper::new(CheckpointConfig::legacy(), Some(128));
        assert!(pbft.announces_at(128));
        assert!(!pbft.announces_at(127));
    }

    #[test]
    fn unbounded_disables_even_the_pbft_builtin() {
        let pbft = CheckpointKeeper::new(CheckpointConfig::unbounded(), Some(128));
        assert!(!pbft.announces_at(128));
        assert!(!pbft.state_transfer_enabled());
    }

    #[test]
    fn active_config_announces_on_the_configured_interval() {
        let k = CheckpointKeeper::new(CheckpointConfig::every(8), None);
        assert!(k.announces_at(8) && k.announces_at(16));
        assert!(!k.announces_at(9));
        assert!(k.state_transfer_enabled());
    }

    #[test]
    fn votes_stabilise_only_with_quorum_and_local_execution() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4), None);
        assert!(!k.record_vote(node(0), 4, 2, 4));
        // Quorum reached but this replica only delivered 3: stays pending.
        assert!(!k.record_vote(node(1), 4, 2, 3));
        // Re-announcing after catching up stabilises it.
        assert!(k.record_vote(node(2), 4, 2, 4));
        assert_eq!(k.stable(), 4);
        // Stale floors are ignored.
        assert!(!k.record_vote(node(1), 3, 1, 10));
        assert_eq!(k.stable(), 4);
    }

    #[test]
    fn request_pacing_fires_once_per_new_evidence() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4), None);
        k.note_hint(10, node(2));
        assert_eq!(k.should_request(4, false), Some(node(2)));
        // Same stall, same evidence: no storm.
        assert_eq!(k.should_request(4, false), None);
        // The hint grew: ask again.
        k.note_hint(12, node(1));
        assert_eq!(k.should_request(4, false), Some(node(1)));
        // The frontier moved (a transfer applied): ask again for the rest.
        k.transfer_applied();
        assert_eq!(k.should_request(11, false), Some(node(1)));
        // No gap, or the next slot commits locally: no request.
        assert_eq!(k.should_request(12, false), None);
        k.note_hint(20, node(3));
        assert_eq!(k.should_request(12, true), None);
    }

    #[test]
    fn prune_floor_tracks_lowest_announced_peer() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4).with_retention(100), None);
        assert!(k.prunes());
        // Nothing prunable before every member has announced once.
        k.record_vote(node(0), 4, 2, 4);
        k.record_vote(node(1), 4, 2, 4);
        assert_eq!(k.stable(), 4);
        assert_eq!(k.prune_floor(3), 0, "node 2 has never announced");
        // Once all three announced, the floor is the lowest of them.
        k.record_vote(node(2), 4, 2, 4);
        k.record_vote(node(0), 8, 2, 8);
        k.record_vote(node(1), 8, 2, 8);
        assert_eq!(k.stable(), 8);
        assert_eq!(k.lowest_peer_floor(3), 4);
        assert_eq!(k.prune_floor(3), 4);
        // Even a stale re-announcement updates the announcer's floor.
        assert!(!k.record_vote(node(2), 8, 2, 8), "already stable");
        assert_eq!(k.prune_floor(3), 8);
    }

    #[test]
    fn prune_floor_is_bounded_by_retention_when_a_peer_freezes() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4).with_retention(8), None);
        for seq in [4u64, 8, 12] {
            for n in 0..3 {
                k.record_vote(node(n), seq, 2, seq);
            }
        }
        // Node 2 crashes at floor 12; the others advance to 32.
        for seq in [16u64, 20, 24, 28, 32] {
            k.record_vote(node(0), seq, 2, seq);
            k.record_vote(node(1), seq, 2, seq);
        }
        assert_eq!(k.stable(), 32);
        assert_eq!(k.lowest_peer_floor(3), 12);
        // The retention term overrides the frozen floor: memory stays flat
        // and the crashed peer recovers from the snapshot instead.
        assert_eq!(k.prune_floor(3), 24);
    }

    #[test]
    fn infinite_retention_never_prunes() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4), None);
        for n in 0..3 {
            k.record_vote(node(n), 4, 2, 4);
        }
        assert!(!k.prunes());
        assert_eq!(k.prune_floor(3), 0);
    }

    #[test]
    fn adopt_stable_jumps_forward_only() {
        let mut k = CheckpointKeeper::new(CheckpointConfig::every(4), None);
        k.adopt_stable(8);
        assert_eq!(k.stable(), 8);
        k.adopt_stable(4);
        assert_eq!(k.stable(), 8);
    }
}
