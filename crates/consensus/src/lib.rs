//! Intra-domain consensus protocols.
//!
//! "Based on the failure model of nodes, Saguaro uses a CFT protocol, e.g.,
//! Paxos, or a BFT protocol, e.g., PBFT" for the internal consensus of each
//! domain.  This crate implements both as *pure message-driven state
//! machines*: feeding a message or a timeout into a replica returns a list of
//! [`interface::Step`]s (messages to send, commands to deliver in order, view
//! changes to announce) without performing any I/O itself.  The `saguaro-core`
//! crate adapts these state machines onto the discrete-event simulator; the
//! unit tests here drive them directly through an in-process router.
//!
//! * [`paxos`] — leader-based Multi-Paxos (viewstamped-replication style)
//!   for crash-only domains: 2f+1 replicas, majority quorums, view change on
//!   leader failure.
//! * [`pbft`] — PBFT for Byzantine domains: 3f+1 replicas, pre-prepare /
//!   prepare / commit phases with 2f+1 quorums, view change on primary
//!   failure, checkpointing.
//! * [`replica`] — a small dispatch wrapper ([`replica::ConsensusReplica`])
//!   that lets higher layers hold "whatever protocol this domain runs" as a
//!   single type.
//! * [`batch`] — request batching: the protocols order [`batch::Batch`]es
//!   (blocks) of commands; the leader-side [`batch::Batcher`] cuts blocks by
//!   size or age according to a [`batch::BatchConfig`].
//! * [`checkpoint`] — checkpoint agreement and state-transfer pacing shared
//!   by both engines: quorum-certified executed floors bound view-change
//!   votes and slot maps, and gap-stalled replicas fetch missing committed
//!   entries from up-to-date peers (`StateRequest` / `StateReply`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod interface;
pub mod paxos;
pub mod pbft;
pub mod replica;
pub mod suspicion;

pub use batch::{Batch, BatchConfig, Batcher};
pub use checkpoint::CheckpointKeeper;
pub use interface::{Command, Step};
pub use paxos::{PaxosMsg, PaxosReplica};
pub use pbft::{PbftMsg, PbftReplica};
pub use replica::{delivered_commands, ConsensusMsg, ConsensusReplica};
pub use saguaro_types::CheckpointConfig;
pub use suspicion::SuspicionTimer;
