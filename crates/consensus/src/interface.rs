//! Common vocabulary shared by the consensus state machines.

use saguaro_crypto::Digest;
use saguaro_types::{NodeId, SeqNo, StateSnapshot};
use std::sync::Arc;

/// A command (client request, cross-domain prepare, block message, ...) that a
/// domain orders through its internal consensus.
pub trait Command: Clone {
    /// Digest identifying the command (used in prepare/commit votes so
    /// replicas vote on a fixed-size value).
    fn digest(&self) -> Digest;
}

impl Command for Vec<u8> {
    fn digest(&self) -> Digest {
        saguaro_crypto::sha256(self)
    }
}

impl Command for String {
    fn digest(&self) -> Digest {
        saguaro_crypto::sha256(self.as_bytes())
    }
}

/// An action requested by a consensus state machine in response to an input.
///
/// The caller is responsible for actually sending the messages (over the
/// simulated network or an in-process router in tests) and for executing the
/// delivered commands in sequence order.
#[derive(Clone, Debug, PartialEq)]
pub enum Step<C, M> {
    /// Send `msg` to a single peer replica of the same domain.
    Send {
        /// Destination replica.
        to: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// Send `msg` to every *other* replica of the domain.
    Broadcast {
        /// The protocol message.
        msg: M,
    },
    /// The command with this sequence number is now committed locally and
    /// must be executed.  Deliveries are emitted in strictly increasing
    /// sequence order with no gaps.
    Deliver {
        /// Agreed sequence number.
        seq: SeqNo,
        /// The committed command.
        command: C,
    },
    /// The replica moved to a new view; `primary` is the new primary.  The
    /// adapter uses this to re-route client requests and restart timers.
    ViewChanged {
        /// The new view number.
        view: u64,
        /// Primary of the new view.
        primary: NodeId,
    },
    /// The engine reached a snapshot point (a checkpoint announcement under
    /// a finite retention window): the adapter must materialize its
    /// application state *as of this step in the stream* — i.e. right after
    /// executing the delivery of `seq` and before executing any later one —
    /// and hand the snapshot back via the engine's `store_snapshot`.
    TakeSnapshot {
        /// The checkpoint sequence number the snapshot captures.
        seq: SeqNo,
    },
    /// A snapshot-based catch-up applied: the adapter must replace its
    /// executed application state with the snapshot's before executing the
    /// deliveries that follow this step (the retained command tail).
    InstallSnapshot {
        /// The snapshot to install.
        snapshot: Arc<StateSnapshot>,
    },
}

impl<C, M> Step<C, M> {
    /// Convenience: true if this step delivers a command.
    pub fn is_delivery(&self) -> bool {
        matches!(self, Step::Deliver { .. })
    }
}

/// Round-robin primary for a view, given the (sorted) replica list of the
/// domain.  Both protocols use the same rule so failure handling is uniform.
pub fn primary_for_view(view: u64, replicas: &[NodeId]) -> NodeId {
    replicas[(view as usize) % replicas.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::DomainId;

    #[test]
    fn byte_and_string_commands_have_digests() {
        let a = vec![1u8, 2, 3];
        let b = vec![1u8, 2, 4];
        assert_ne!(a.digest(), b.digest());
        assert_ne!("x".to_string().digest(), "y".to_string().digest());
    }

    #[test]
    fn primary_rotates_round_robin() {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..4).map(|i| NodeId::new(d, i)).collect();
        assert_eq!(primary_for_view(0, &nodes), nodes[0]);
        assert_eq!(primary_for_view(1, &nodes), nodes[1]);
        assert_eq!(primary_for_view(5, &nodes), nodes[1]);
    }

    #[test]
    fn step_is_delivery() {
        let s: Step<Vec<u8>, ()> = Step::Deliver {
            seq: 1,
            command: vec![],
        };
        assert!(s.is_delivery());
        let s: Step<Vec<u8>, ()> = Step::ViewChanged {
            view: 1,
            primary: NodeId::new(DomainId::new(1, 0), 1),
        };
        assert!(!s.is_delivery());
    }
}
