//! A dispatch wrapper over the two internal consensus protocols.
//!
//! Higher layers (the Saguaro node, the baselines, the experiment harness)
//! hold one [`ConsensusReplica`] per domain member and do not care whether
//! the domain is crash-only or Byzantine: proposing, message handling and
//! timeouts are forwarded to the protocol selected by the domain's failure
//! model, and wire messages travel as [`ConsensusMsg`].

use crate::interface::{Command, Step};
use crate::paxos::{PaxosMsg, PaxosReplica};
use crate::pbft::{PbftMsg, PbftReplica};
use saguaro_types::{FailureModel, NodeId, QuorumSpec, SeqNo};

/// Wire message of either protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusMsg<C> {
    /// A Multi-Paxos message (crash-only domains).
    Paxos(PaxosMsg<C>),
    /// A PBFT message (Byzantine domains).
    Pbft(PbftMsg<C>),
}

impl<C> ConsensusMsg<C> {
    /// Number of signatures a receiver has to verify for this message.
    ///
    /// Crash-only domains exchange unsigned messages inside the domain; BFT
    /// messages carry one signature each (view changes carry certificates,
    /// approximated as `1 + prepared entries`).
    pub fn signature_count(&self) -> usize {
        match self {
            ConsensusMsg::Paxos(_) => 0,
            ConsensusMsg::Pbft(m) => match m {
                PbftMsg::ViewChange { prepared, .. } => 1 + prepared.len(),
                PbftMsg::NewView { log, .. } => 1 + log.len(),
                _ => 1,
            },
        }
    }
}

/// A replica of one domain running whichever protocol the domain's failure
/// model requires.
#[derive(Clone, Debug)]
pub enum ConsensusReplica<C> {
    /// Multi-Paxos replica.
    Paxos(PaxosReplica<C>),
    /// PBFT replica.
    Pbft(PbftReplica<C>),
}

impl<C: Command> ConsensusReplica<C> {
    /// Creates the appropriate replica for a domain with the given quorum
    /// specification.
    pub fn new(me: NodeId, replicas: Vec<NodeId>, quorum: QuorumSpec) -> Self {
        match quorum.model {
            FailureModel::Crash => Self::Paxos(PaxosReplica::new(me, replicas, quorum)),
            FailureModel::Byzantine => Self::Pbft(PbftReplica::new(me, replicas, quorum)),
        }
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        match self {
            Self::Paxos(r) => r.view(),
            Self::Pbft(r) => r.view(),
        }
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        match self {
            Self::Paxos(r) => r.primary(),
            Self::Pbft(r) => r.primary(),
        }
    }

    /// True if this replica is the primary of the current view.
    pub fn is_primary(&self) -> bool {
        match self {
            Self::Paxos(r) => r.is_primary(),
            Self::Pbft(r) => r.is_primary(),
        }
    }

    /// Last delivered sequence number.
    pub fn last_delivered(&self) -> SeqNo {
        match self {
            Self::Paxos(r) => r.last_delivered(),
            Self::Pbft(r) => r.last_delivered(),
        }
    }

    /// Proposes a command (no-op on non-primaries).
    pub fn propose(&mut self, cmd: C) -> Vec<Step<C, ConsensusMsg<C>>> {
        match self {
            Self::Paxos(r) => wrap(r.propose(cmd), ConsensusMsg::Paxos),
            Self::Pbft(r) => wrap(r.propose(cmd), ConsensusMsg::Pbft),
        }
    }

    /// Handles a wire message from a peer replica.  Messages of the wrong
    /// protocol (which a Byzantine peer could fabricate) are ignored.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: ConsensusMsg<C>,
    ) -> Vec<Step<C, ConsensusMsg<C>>> {
        match (self, msg) {
            (Self::Paxos(r), ConsensusMsg::Paxos(m)) => {
                wrap(r.on_message(from, m), ConsensusMsg::Paxos)
            }
            (Self::Pbft(r), ConsensusMsg::Pbft(m)) => {
                wrap(r.on_message(from, m), ConsensusMsg::Pbft)
            }
            _ => Vec::new(),
        }
    }

    /// Progress timeout: suspect the primary if this replica is a backup.
    pub fn on_progress_timeout(&mut self) -> Vec<Step<C, ConsensusMsg<C>>> {
        match self {
            Self::Paxos(r) => wrap(r.on_progress_timeout(), ConsensusMsg::Paxos),
            Self::Pbft(r) => wrap(r.on_progress_timeout(), ConsensusMsg::Pbft),
        }
    }
}

fn wrap<C, M, W>(steps: Vec<Step<C, M>>, f: impl Fn(M) -> W) -> Vec<Step<C, W>> {
    steps
        .into_iter()
        .map(|s| match s {
            Step::Send { to, msg } => Step::Send { to, msg: f(msg) },
            Step::Broadcast { msg } => Step::Broadcast { msg: f(msg) },
            Step::Deliver { seq, command } => Step::Deliver { seq, command },
            Step::ViewChanged { view, primary } => Step::ViewChanged { view, primary },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::DomainId;
    use std::collections::VecDeque;

    type Cmd = Vec<u8>;

    fn domain(model: FailureModel, n: u16) -> (Vec<NodeId>, Vec<ConsensusReplica<Cmd>>) {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
        let quorum = QuorumSpec::for_size(model, n as usize);
        let reps = nodes
            .iter()
            .map(|id| ConsensusReplica::new(*id, nodes.clone(), quorum))
            .collect();
        (nodes, reps)
    }

    /// Per-origin initial protocol steps fed into the test network.
    type InitialSteps = Vec<(usize, Vec<Step<Cmd, ConsensusMsg<Cmd>>>)>;

    fn drive(
        nodes: &[NodeId],
        reps: &mut [ConsensusReplica<Cmd>],
        initial: InitialSteps,
    ) -> Vec<Vec<Cmd>> {
        let mut delivered = vec![Vec::new(); reps.len()];
        let mut queue: VecDeque<(usize, NodeId, ConsensusMsg<Cmd>)> = VecDeque::new();
        let idx = |id: NodeId| nodes.iter().position(|n| *n == id).unwrap();
        let handle = |o: usize,
                      steps: Vec<Step<Cmd, ConsensusMsg<Cmd>>>,
                      q: &mut VecDeque<(usize, NodeId, ConsensusMsg<Cmd>)>,
                      del: &mut Vec<Vec<Cmd>>| {
            for s in steps {
                match s {
                    Step::Send { to, msg } => q.push_back((idx(to), nodes[o], msg)),
                    Step::Broadcast { msg } => {
                        for i in 0..nodes.len() {
                            if i != o {
                                q.push_back((i, nodes[o], msg.clone()));
                            }
                        }
                    }
                    Step::Deliver { command, .. } => del[o].push(command),
                    Step::ViewChanged { .. } => {}
                }
            }
        };
        for (o, s) in initial {
            handle(o, s, &mut queue, &mut delivered);
        }
        while let Some((to, from, msg)) = queue.pop_front() {
            let steps = reps[to].on_message(from, msg);
            handle(to, steps, &mut queue, &mut delivered);
        }
        delivered
    }

    #[test]
    fn selects_protocol_from_failure_model() {
        let (_n, reps) = domain(FailureModel::Crash, 3);
        assert!(matches!(reps[0], ConsensusReplica::Paxos(_)));
        let (_n, reps) = domain(FailureModel::Byzantine, 4);
        assert!(matches!(reps[0], ConsensusReplica::Pbft(_)));
    }

    #[test]
    fn both_protocols_commit_through_the_wrapper() {
        for (model, n) in [(FailureModel::Crash, 3u16), (FailureModel::Byzantine, 4)] {
            let (nodes, mut reps) = domain(model, n);
            assert!(reps[0].is_primary());
            assert_eq!(reps[0].primary(), nodes[0]);
            let steps = reps[0].propose(b"hello".to_vec());
            let delivered = drive(&nodes, &mut reps, vec![(0, steps)]);
            for d in &delivered {
                assert_eq!(d, &vec![b"hello".to_vec()]);
            }
            assert!(reps.iter().all(|r| r.last_delivered() == 1));
            assert_eq!(reps[0].view(), 0);
        }
    }

    #[test]
    fn cross_protocol_messages_are_ignored() {
        let (_nodes, mut reps) = domain(FailureModel::Crash, 3);
        let bogus = ConsensusMsg::Pbft(PbftMsg::Prepare {
            view: 0,
            seq: 1,
            digest: saguaro_crypto::sha256(b"x"),
        });
        assert!(reps[1]
            .on_message(NodeId::new(DomainId::new(1, 0), 0), bogus)
            .is_empty());
    }

    #[test]
    fn signature_counts_differ_between_models() {
        let paxos: ConsensusMsg<Cmd> = ConsensusMsg::Paxos(PaxosMsg::Learn { view: 0, seq: 1 });
        let pbft: ConsensusMsg<Cmd> = ConsensusMsg::Pbft(PbftMsg::Commit {
            view: 0,
            seq: 1,
            digest: saguaro_crypto::sha256(b"x"),
        });
        assert_eq!(paxos.signature_count(), 0);
        assert_eq!(pbft.signature_count(), 1);
        let vc: ConsensusMsg<Cmd> = ConsensusMsg::Pbft(PbftMsg::ViewChange {
            new_view: 1,
            prepared: vec![(1, 0, b"c".to_vec()), (2, 0, b"d".to_vec())],
            checkpoint: 0,
        });
        assert_eq!(vc.signature_count(), 3);
    }

    #[test]
    fn timeout_dispatches_to_active_protocol() {
        let (_nodes, mut reps) = domain(FailureModel::Byzantine, 4);
        assert!(reps[0].on_progress_timeout().is_empty());
        assert!(!reps[1].on_progress_timeout().is_empty());
    }
}
