//! A dispatch wrapper over the two internal consensus protocols.
//!
//! Higher layers (the Saguaro node, the baselines, the experiment harness)
//! hold one [`ConsensusReplica`] per domain member and do not care whether
//! the domain is crash-only or Byzantine: proposing, message handling and
//! timeouts are forwarded to the protocol selected by the domain's failure
//! model, and wire messages travel as [`ConsensusMsg`].
//!
//! The wrapper is also where request batching lives: the underlying Paxos /
//! PBFT state machines order [`Batch`]es of commands (digest = Merkle root
//! over the member digests), and the leader-side [`Batcher`] accumulates
//! commands handed to [`ConsensusReplica::propose`] until a block is cut by
//! size or — via the adapter's flush timer calling
//! [`ConsensusReplica::flush`] — by age.  Every [`Step::Deliver`] therefore
//! hands back a whole batch; consumers unpack it into per-command execution.

use crate::batch::{Batch, BatchConfig, Batcher};
use crate::interface::{Command, Step};
use crate::paxos::{PaxosMsg, PaxosReplica};
use crate::pbft::{PbftMsg, PbftReplica};
use saguaro_types::{CheckpointConfig, FailureModel, NodeId, QuorumSpec, SeqNo, StateSnapshot};
use std::sync::Arc;

/// Wire message of either protocol, carrying batches of commands.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusMsg<C> {
    /// A Multi-Paxos message (crash-only domains).
    Paxos(PaxosMsg<Batch<C>>),
    /// A PBFT message (Byzantine domains).
    Pbft(PbftMsg<Batch<C>>),
}

impl<C> ConsensusMsg<C> {
    /// Number of signatures a receiver has to verify for this message.
    ///
    /// Crash-only domains exchange unsigned messages inside the domain; BFT
    /// messages carry one signature each (view changes carry certificates,
    /// approximated as `1 + prepared entries`).  Batching does not change
    /// the count: a block is certified as one unit, which is exactly why it
    /// amortises the per-command verification cost.
    pub fn signature_count(&self) -> usize {
        match self {
            ConsensusMsg::Paxos(_) => 0,
            ConsensusMsg::Pbft(m) => match m {
                PbftMsg::ViewChange { prepared, .. } => 1 + prepared.len(),
                PbftMsg::NewView { log, .. } => 1 + log.len(),
                // A state reply ships one checkpoint-style certificate per
                // transferred entry.
                PbftMsg::StateReply { entries, .. } => 1 + entries.len(),
                // A snapshot reply ships the snapshot's checkpoint
                // certificate plus one certificate per tail entry.
                PbftMsg::SnapshotReply { tail, .. } => 1 + tail.len(),
                _ => 1,
            },
        }
    }

    /// True for the VR-style state-transfer messages (used by the network
    /// statistics to account transfer traffic separately).
    pub fn is_state_transfer(&self) -> bool {
        matches!(
            self,
            ConsensusMsg::Paxos(PaxosMsg::StateRequest { .. })
                | ConsensusMsg::Paxos(PaxosMsg::StateReply { .. })
                | ConsensusMsg::Paxos(PaxosMsg::SnapshotReply { .. })
                | ConsensusMsg::Pbft(PbftMsg::StateRequest { .. })
                | ConsensusMsg::Pbft(PbftMsg::StateReply { .. })
                | ConsensusMsg::Pbft(PbftMsg::SnapshotReply { .. })
        )
    }

    /// True for a state *reply* — the message whose application is how a
    /// gap-stalled replica catches up (node layers watch for it to record
    /// recovery instants).
    pub fn is_state_reply(&self) -> bool {
        matches!(
            self,
            ConsensusMsg::Paxos(PaxosMsg::StateReply { .. })
                | ConsensusMsg::Paxos(PaxosMsg::SnapshotReply { .. })
                | ConsensusMsg::Pbft(PbftMsg::StateReply { .. })
                | ConsensusMsg::Pbft(PbftMsg::SnapshotReply { .. })
        )
    }

    /// The view campaigned for by a view-change vote (`None` for every other
    /// message) — node layers watch outgoing broadcasts for it to trace the
    /// start of a view change.
    pub fn view_change_view(&self) -> Option<u64> {
        match self {
            ConsensusMsg::Paxos(PaxosMsg::ViewChange { new_view, .. })
            | ConsensusMsg::Pbft(PbftMsg::ViewChange { new_view, .. }) => Some(*new_view),
            _ => None,
        }
    }

    /// The application snapshot carried by a snapshot-based catch-up reply
    /// (`None` for every other message) — wire-size models charge its
    /// modeled size on top of the per-command terms.
    pub fn snapshot_payload(&self) -> Option<&StateSnapshot> {
        match self {
            ConsensusMsg::Paxos(PaxosMsg::SnapshotReply { snapshot, .. }) => Some(snapshot),
            ConsensusMsg::Pbft(PbftMsg::SnapshotReply { snapshot, .. }) => Some(snapshot),
            _ => None,
        }
    }

    /// Total member commands carried by a state reply (0 for any other
    /// message) — wire-size models charge transfers per carried command.
    pub fn state_reply_commands(&self) -> usize {
        match self {
            ConsensusMsg::Paxos(PaxosMsg::StateReply { entries, .. }) => {
                entries.iter().map(|(_, b)| b.len()).sum()
            }
            ConsensusMsg::Pbft(PbftMsg::StateReply { entries, .. }) => {
                entries.iter().map(|(_, b)| b.len()).sum()
            }
            ConsensusMsg::Paxos(PaxosMsg::SnapshotReply { tail, .. }) => {
                tail.iter().map(|(_, b)| b.len()).sum()
            }
            ConsensusMsg::Pbft(PbftMsg::SnapshotReply { tail, .. }) => {
                tail.iter().map(|(_, b)| b.len()).sum()
            }
            _ => 0,
        }
    }

    /// Member commands carried beyond one per block.
    ///
    /// Wire-size models charge a per-member increment on top of the legacy
    /// single-command message size, so an unbatched deployment
    /// (`max_batch = 1`, every block a single command) costs exactly what it
    /// did before batching existed.
    pub fn extra_commands(&self) -> usize {
        let batch_extra = |b: &Batch<C>| b.len().saturating_sub(1);
        match self {
            ConsensusMsg::Paxos(m) => match m {
                PaxosMsg::Accept { cmd, .. } => batch_extra(cmd),
                PaxosMsg::ViewChange { accepted, .. } => {
                    accepted.iter().map(|(_, _, b)| batch_extra(b)).sum()
                }
                PaxosMsg::NewView { log, .. } => log.iter().map(|(_, b)| batch_extra(b)).sum(),
                PaxosMsg::StateReply { entries, .. } => {
                    entries.iter().map(|(_, b)| batch_extra(b)).sum()
                }
                PaxosMsg::SnapshotReply { tail, .. } => {
                    tail.iter().map(|(_, b)| batch_extra(b)).sum()
                }
                PaxosMsg::Accepted { .. }
                | PaxosMsg::Learn { .. }
                | PaxosMsg::Checkpoint { .. }
                | PaxosMsg::StateRequest { .. } => 0,
            },
            ConsensusMsg::Pbft(m) => match m {
                PbftMsg::PrePrepare { cmd, .. } => batch_extra(cmd),
                PbftMsg::ViewChange { prepared, .. } => {
                    prepared.iter().map(|(_, _, b)| batch_extra(b)).sum()
                }
                PbftMsg::NewView { log, .. } => log.iter().map(|(_, b)| batch_extra(b)).sum(),
                PbftMsg::StateReply { entries, .. } => {
                    entries.iter().map(|(_, b)| batch_extra(b)).sum()
                }
                PbftMsg::SnapshotReply { tail, .. } => {
                    tail.iter().map(|(_, b)| batch_extra(b)).sum()
                }
                PbftMsg::Prepare { .. }
                | PbftMsg::Commit { .. }
                | PbftMsg::Checkpoint { .. }
                | PbftMsg::StateRequest { .. } => 0,
            },
        }
    }
}

/// The protocol state machine a replica runs, ordering whole batches.
#[derive(Clone, Debug)]
enum Engine<C> {
    Paxos(PaxosReplica<Batch<C>>),
    Pbft(PbftReplica<Batch<C>>),
}

/// A replica of one domain running whichever protocol the domain's failure
/// model requires, plus the leader-side request batcher.
#[derive(Clone, Debug)]
pub struct ConsensusReplica<C> {
    engine: Engine<C>,
    batcher: Batcher<C>,
}

impl<C: Command> ConsensusReplica<C> {
    /// Creates the appropriate replica for a domain with the given quorum
    /// specification, with batching disabled (`max_batch = 1`).
    pub fn new(me: NodeId, replicas: Vec<NodeId>, quorum: QuorumSpec) -> Self {
        Self::with_batching(me, replicas, quorum, BatchConfig::unbatched())
    }

    /// Creates a replica whose leader cuts blocks according to `batch`.
    pub fn with_batching(
        me: NodeId,
        replicas: Vec<NodeId>,
        quorum: QuorumSpec,
        batch: BatchConfig,
    ) -> Self {
        let engine = match quorum.model {
            FailureModel::Crash => Engine::Paxos(PaxosReplica::new(me, replicas, quorum)),
            FailureModel::Byzantine => Engine::Pbft(PbftReplica::new(me, replicas, quorum)),
        };
        Self {
            engine,
            batcher: Batcher::new(batch),
        }
    }

    /// Replaces the checkpoint / state-transfer configuration of the
    /// underlying engine (builder style).
    pub fn with_checkpointing(mut self, checkpoint: CheckpointConfig) -> Self {
        self.engine = match self.engine {
            Engine::Paxos(r) => Engine::Paxos(r.with_checkpointing(checkpoint)),
            Engine::Pbft(r) => Engine::Pbft(r.with_checkpointing(checkpoint)),
        };
        self
    }

    /// The last stable (quorum-certified executed) checkpoint.
    pub fn stable_checkpoint(&self) -> SeqNo {
        match &self.engine {
            Engine::Paxos(r) => r.stable_checkpoint(),
            Engine::Pbft(r) => r.stable_checkpoint(),
        }
    }

    /// Number of consensus slots currently retained (bounded by checkpoint
    /// garbage collection when the subsystem is active).
    pub fn log_len(&self) -> usize {
        match &self.engine {
            Engine::Paxos(r) => r.log_len(),
            Engine::Pbft(r) => r.log_len(),
        }
    }

    /// Number of entries a view-change vote sent right now would carry —
    /// bounded by `history − stable checkpoint`.
    pub fn vote_entries(&self) -> usize {
        match &self.engine {
            Engine::Paxos(r) => r.vote_entries(),
            Engine::Pbft(r) => r.vote_entries(),
        }
    }

    /// True if the domain runs PBFT (Byzantine failure model).
    pub fn is_byzantine(&self) -> bool {
        matches!(self.engine, Engine::Pbft(_))
    }

    /// Conflicting view-change / new-view certificates this replica has
    /// detected and discarded (twin certificates from an equivocating peer).
    pub fn certificate_conflicts(&self) -> u64 {
        match &self.engine {
            Engine::Paxos(r) => r.certificate_conflicts(),
            Engine::Pbft(r) => r.certificate_conflicts(),
        }
    }

    /// The batching knobs this replica runs with.
    pub fn batch_config(&self) -> &BatchConfig {
        self.batcher.config()
    }

    /// Commands accumulated by the leader but not yet cut into a block.
    /// Non-zero only between a `propose` that left a block filling and the
    /// next cut (by size) or [`ConsensusReplica::flush`] (by the adapter's
    /// delay timer).
    pub fn pending_commands(&self) -> usize {
        self.batcher.pending()
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        match &self.engine {
            Engine::Paxos(r) => r.view(),
            Engine::Pbft(r) => r.view(),
        }
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        match &self.engine {
            Engine::Paxos(r) => r.primary(),
            Engine::Pbft(r) => r.primary(),
        }
    }

    /// True if this replica is the primary of the current view.
    pub fn is_primary(&self) -> bool {
        match &self.engine {
            Engine::Paxos(r) => r.is_primary(),
            Engine::Pbft(r) => r.is_primary(),
        }
    }

    /// Last delivered sequence number (counts blocks, not member commands).
    pub fn last_delivered(&self) -> SeqNo {
        match &self.engine {
            Engine::Paxos(r) => r.last_delivered(),
            Engine::Pbft(r) => r.last_delivered(),
        }
    }

    /// Hands the engine the application snapshot the adapter materialized in
    /// response to a [`Step::TakeSnapshot`].  Stale snapshots (at or below
    /// the one already held) are ignored.
    pub fn store_snapshot(&mut self, snapshot: Arc<StateSnapshot>) {
        match &mut self.engine {
            Engine::Paxos(r) => r.store_snapshot(snapshot),
            Engine::Pbft(r) => r.store_snapshot(snapshot),
        }
    }

    /// Number of delivered-command chain entries the engine still retains
    /// (the whole history under `retention = ∞`, a bounded suffix otherwise).
    pub fn chain_len(&self) -> u64 {
        match &self.engine {
            Engine::Paxos(r) => r.chain_len(),
            Engine::Pbft(r) => r.chain_len(),
        }
    }

    /// First sequence number still retained in the delivered-command chain.
    pub fn chain_start(&self) -> SeqNo {
        match &self.engine {
            Engine::Paxos(r) => r.chain_start(),
            Engine::Pbft(r) => r.chain_start(),
        }
    }

    /// Sequence number of the application snapshot the engine currently
    /// holds, if any.
    pub fn snapshot_seq(&self) -> Option<SeqNo> {
        match &self.engine {
            Engine::Paxos(r) => r.snapshot_seq(),
            Engine::Pbft(r) => r.snapshot_seq(),
        }
    }

    /// Hands a command to the leader-side batcher (no-op on non-primaries)
    /// and drives consensus on the cut block, if the push completed one.
    ///
    /// When this returns no steps but [`ConsensusReplica::pending_commands`]
    /// is non-zero, the adapter must arrange for
    /// [`ConsensusReplica::flush`] to run within
    /// [`BatchConfig::max_delay`].
    pub fn propose(&mut self, cmd: C) -> Vec<Step<Batch<C>, ConsensusMsg<C>>> {
        if !self.is_primary() {
            return Vec::new();
        }
        match self.batcher.push(cmd) {
            Some(batch) => self.propose_batch(batch),
            None => Vec::new(),
        }
    }

    /// Cuts and proposes whatever the batcher holds (the `max_delay` path).
    ///
    /// If the engine refuses the proposal — the flush timer raced a view
    /// change that deposed (or is deposing) this leader — the commands are
    /// put back into the batcher rather than destroyed: they are retried by
    /// the next cut, and commit if this replica leads again.  (The
    /// `propose` path deliberately keeps the legacy semantics instead — a
    /// command handed to a mid-view-change leader is dropped, exactly as
    /// the unbatched pipeline dropped it.)
    pub fn flush(&mut self) -> Vec<Step<Batch<C>, ConsensusMsg<C>>> {
        let Some(batch) = self.batcher.flush() else {
            return Vec::new();
        };
        let retry = batch.clone();
        let steps = self.propose_batch(batch);
        if steps.is_empty() {
            // The engine emits at least one Send/Broadcast for any accepted
            // proposal; no steps means it refused the batch.
            self.batcher.restore(retry);
        }
        steps
    }

    fn propose_batch(&mut self, batch: Batch<C>) -> Vec<Step<Batch<C>, ConsensusMsg<C>>> {
        match &mut self.engine {
            Engine::Paxos(r) => wrap(r.propose(batch), ConsensusMsg::Paxos),
            Engine::Pbft(r) => wrap(r.propose(batch), ConsensusMsg::Pbft),
        }
    }

    /// Handles a wire message from a peer replica.  Messages of the wrong
    /// protocol (which a Byzantine peer could fabricate) are ignored.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: ConsensusMsg<C>,
    ) -> Vec<Step<Batch<C>, ConsensusMsg<C>>> {
        match (&mut self.engine, msg) {
            (Engine::Paxos(r), ConsensusMsg::Paxos(m)) => {
                wrap(r.on_message(from, m), ConsensusMsg::Paxos)
            }
            (Engine::Pbft(r), ConsensusMsg::Pbft(m)) => {
                wrap(r.on_message(from, m), ConsensusMsg::Pbft)
            }
            _ => Vec::new(),
        }
    }

    /// Progress timeout: suspect the primary if this replica is a backup.
    pub fn on_progress_timeout(&mut self) -> Vec<Step<Batch<C>, ConsensusMsg<C>>> {
        match &mut self.engine {
            Engine::Paxos(r) => wrap(r.on_progress_timeout(), ConsensusMsg::Paxos),
            Engine::Pbft(r) => wrap(r.on_progress_timeout(), ConsensusMsg::Pbft),
        }
    }
}

/// Total member commands delivered by a slice of consensus output steps.
/// Node layers use it to account how many commands a state-transfer reply
/// actually applied (zero means the reply was stale).
pub fn delivered_commands<C, M>(steps: &[Step<Batch<C>, M>]) -> u64 {
    steps
        .iter()
        .filter_map(|s| match s {
            Step::Deliver { command, .. } => Some(command.len() as u64),
            _ => None,
        })
        .sum()
}

fn wrap<C, M, W>(steps: Vec<Step<Batch<C>, M>>, f: impl Fn(M) -> W) -> Vec<Step<Batch<C>, W>> {
    steps
        .into_iter()
        .map(|s| match s {
            Step::Send { to, msg } => Step::Send { to, msg: f(msg) },
            Step::Broadcast { msg } => Step::Broadcast { msg: f(msg) },
            Step::Deliver { seq, command } => Step::Deliver { seq, command },
            Step::ViewChanged { view, primary } => Step::ViewChanged { view, primary },
            Step::TakeSnapshot { seq } => Step::TakeSnapshot { seq },
            Step::InstallSnapshot { snapshot } => Step::InstallSnapshot { snapshot },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::{DomainId, Duration};
    use std::collections::VecDeque;

    type Cmd = Vec<u8>;

    fn domain_with(
        model: FailureModel,
        n: u16,
        batch: BatchConfig,
    ) -> (Vec<NodeId>, Vec<ConsensusReplica<Cmd>>) {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
        let quorum = QuorumSpec::for_size(model, n as usize);
        let reps = nodes
            .iter()
            .map(|id| ConsensusReplica::with_batching(*id, nodes.clone(), quorum, batch))
            .collect();
        (nodes, reps)
    }

    fn domain(model: FailureModel, n: u16) -> (Vec<NodeId>, Vec<ConsensusReplica<Cmd>>) {
        domain_with(model, n, BatchConfig::unbatched())
    }

    /// Per-origin initial protocol steps fed into the test network.
    type InitialSteps = Vec<(usize, Vec<Step<Batch<Cmd>, ConsensusMsg<Cmd>>>)>;

    fn drive(
        nodes: &[NodeId],
        reps: &mut [ConsensusReplica<Cmd>],
        initial: InitialSteps,
    ) -> Vec<Vec<Cmd>> {
        let mut delivered = vec![Vec::new(); reps.len()];
        let mut queue: VecDeque<(usize, NodeId, ConsensusMsg<Cmd>)> = VecDeque::new();
        let idx = |id: NodeId| nodes.iter().position(|n| *n == id).unwrap();
        let handle = |o: usize,
                      steps: Vec<Step<Batch<Cmd>, ConsensusMsg<Cmd>>>,
                      q: &mut VecDeque<(usize, NodeId, ConsensusMsg<Cmd>)>,
                      del: &mut Vec<Vec<Cmd>>| {
            for s in steps {
                match s {
                    Step::Send { to, msg } => q.push_back((idx(to), nodes[o], msg)),
                    Step::Broadcast { msg } => {
                        for i in 0..nodes.len() {
                            if i != o {
                                q.push_back((i, nodes[o], msg.clone()));
                            }
                        }
                    }
                    Step::Deliver { command, .. } => del[o].extend(command.into_commands()),
                    Step::ViewChanged { .. }
                    | Step::TakeSnapshot { .. }
                    | Step::InstallSnapshot { .. } => {}
                }
            }
        };
        for (o, s) in initial {
            handle(o, s, &mut queue, &mut delivered);
        }
        while let Some((to, from, msg)) = queue.pop_front() {
            let steps = reps[to].on_message(from, msg);
            handle(to, steps, &mut queue, &mut delivered);
        }
        delivered
    }

    #[test]
    fn selects_protocol_from_failure_model() {
        let (_n, reps) = domain(FailureModel::Crash, 3);
        assert!(!reps[0].is_byzantine());
        let (_n, reps) = domain(FailureModel::Byzantine, 4);
        assert!(reps[0].is_byzantine());
    }

    #[test]
    fn both_protocols_commit_through_the_wrapper() {
        for (model, n) in [(FailureModel::Crash, 3u16), (FailureModel::Byzantine, 4)] {
            let (nodes, mut reps) = domain(model, n);
            assert!(reps[0].is_primary());
            assert_eq!(reps[0].primary(), nodes[0]);
            let steps = reps[0].propose(b"hello".to_vec());
            let delivered = drive(&nodes, &mut reps, vec![(0, steps)]);
            for d in &delivered {
                assert_eq!(d, &vec![b"hello".to_vec()]);
            }
            assert!(reps.iter().all(|r| r.last_delivered() == 1));
            assert_eq!(reps[0].view(), 0);
        }
    }

    #[test]
    fn full_batch_commits_as_one_block() {
        for (model, n) in [(FailureModel::Crash, 3u16), (FailureModel::Byzantine, 4)] {
            let (nodes, mut reps) = domain_with(model, n, BatchConfig::with_max_batch(3));
            let mut initial = Vec::new();
            assert!(reps[0].propose(b"a".to_vec()).is_empty());
            assert!(reps[0].propose(b"b".to_vec()).is_empty());
            assert_eq!(reps[0].pending_commands(), 2);
            initial.push((0, reps[0].propose(b"c".to_vec())));
            assert_eq!(reps[0].pending_commands(), 0);
            let delivered = drive(&nodes, &mut reps, initial);
            for d in &delivered {
                assert_eq!(d, &vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
            }
            // Three commands, one consensus instance.
            assert!(reps.iter().all(|r| r.last_delivered() == 1));
        }
    }

    #[test]
    fn flush_proposes_the_underfull_block() {
        let (nodes, mut reps) = domain_with(
            FailureModel::Crash,
            3,
            BatchConfig::with_max_batch(8).with_max_delay(Duration::from_millis(2)),
        );
        assert!(reps[0].propose(b"only".to_vec()).is_empty());
        assert_eq!(reps[0].pending_commands(), 1);
        let steps = reps[0].flush();
        assert!(!steps.is_empty());
        let delivered = drive(&nodes, &mut reps, vec![(0, steps)]);
        for d in &delivered {
            assert_eq!(d, &vec![b"only".to_vec()]);
        }
        assert!(reps[0].flush().is_empty(), "nothing left to flush");
    }

    #[test]
    fn flush_racing_a_view_change_retains_buffered_commands() {
        let (nodes, mut reps) = domain_with(FailureModel::Crash, 3, BatchConfig::with_max_batch(8));
        // The view-0 leader buffers two commands without cutting a block.
        assert!(reps[0].propose(b"a".to_vec()).is_empty());
        assert!(reps[0].propose(b"b".to_vec()).is_empty());
        assert_eq!(reps[0].pending_commands(), 2);
        // The backups suspect it and elect replica 1; the deposed leader
        // learns of the new view before its flush timer fires.
        let vc1 = reps[1].on_progress_timeout();
        let vc2 = reps[2].on_progress_timeout();
        drive(&nodes, &mut reps, vec![(1, vc1), (2, vc2)]);
        assert!(!reps[0].is_primary());
        // The late flush must not destroy the buffered commands: the engine
        // refuses the proposal and the batcher keeps them for a retry.
        assert!(reps[0].flush().is_empty());
        assert_eq!(reps[0].pending_commands(), 2);
    }

    #[test]
    fn non_primary_propose_is_dropped_without_batching() {
        let (_nodes, mut reps) =
            domain_with(FailureModel::Crash, 3, BatchConfig::with_max_batch(4));
        assert!(reps[1].propose(b"x".to_vec()).is_empty());
        assert_eq!(reps[1].pending_commands(), 0);
    }

    #[test]
    fn cross_protocol_messages_are_ignored() {
        let (_nodes, mut reps) = domain(FailureModel::Crash, 3);
        let bogus = ConsensusMsg::Pbft(PbftMsg::Prepare {
            view: 0,
            seq: 1,
            digest: saguaro_crypto::sha256(b"x"),
        });
        assert!(reps[1]
            .on_message(NodeId::new(DomainId::new(1, 0), 0), bogus)
            .is_empty());
    }

    #[test]
    fn signature_counts_differ_between_models() {
        let paxos: ConsensusMsg<Cmd> = ConsensusMsg::Paxos(PaxosMsg::Learn { view: 0, seq: 1 });
        let pbft: ConsensusMsg<Cmd> = ConsensusMsg::Pbft(PbftMsg::Commit {
            view: 0,
            seq: 1,
            digest: saguaro_crypto::sha256(b"x"),
        });
        assert_eq!(paxos.signature_count(), 0);
        assert_eq!(pbft.signature_count(), 1);
        let vc: ConsensusMsg<Cmd> = ConsensusMsg::Pbft(PbftMsg::ViewChange {
            new_view: 1,
            prepared: vec![
                (1, 0, Batch::single(b"c".to_vec())),
                (2, 0, Batch::single(b"d".to_vec())),
            ],
            checkpoint: 0,
        });
        assert_eq!(vc.signature_count(), 3);
    }

    #[test]
    fn extra_commands_counts_members_beyond_one_per_block() {
        let single: ConsensusMsg<Cmd> = ConsensusMsg::Paxos(PaxosMsg::Accept {
            view: 0,
            seq: 1,
            cmd: Batch::single(b"a".to_vec()),
        });
        assert_eq!(single.extra_commands(), 0);
        let triple: ConsensusMsg<Cmd> = ConsensusMsg::Pbft(PbftMsg::PrePrepare {
            view: 0,
            seq: 1,
            cmd: Batch::new(vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]),
        });
        assert_eq!(triple.extra_commands(), 2);
        let learn: ConsensusMsg<Cmd> = ConsensusMsg::Paxos(PaxosMsg::Learn { view: 0, seq: 1 });
        assert_eq!(learn.extra_commands(), 0);
    }

    #[test]
    fn timeout_dispatches_to_active_protocol() {
        let (_nodes, mut reps) = domain(FailureModel::Byzantine, 4);
        assert!(reps[0].on_progress_timeout().is_empty());
        assert!(!reps[1].on_progress_timeout().is_empty());
    }
}
