//! Request batching for the ordering pipeline.
//!
//! Saguaro (like the systems it is compared against) orders *blocks* of
//! transactions through each domain's internal consensus rather than one
//! consensus instance per command.  [`Batch`] is the block: an ordered list
//! of member commands whose digest is the Merkle root over the member
//! digests, so replicas vote on a fixed-size value and any member can later
//! be proven part of the block.  [`Batcher`] is the leader-side accumulator
//! that cuts blocks by size ([`BatchConfig::max_batch`]) or age
//! ([`BatchConfig::max_delay`], enforced by the adapter's flush timer).

use crate::interface::Command;
use saguaro_crypto::sha256::sha256_parts;
use saguaro_crypto::{Digest, MerkleTree};
pub use saguaro_types::BatchConfig;

/// An ordered block of commands ordered through consensus as one unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch<C> {
    commands: Vec<C>,
}

impl<C> Batch<C> {
    /// Builds a batch from its member commands (empty batches are legal but
    /// never produced by the [`Batcher`]).
    pub fn new(commands: Vec<C>) -> Self {
        Self { commands }
    }

    /// A block of exactly one command (the unbatched configuration).
    pub fn single(cmd: C) -> Self {
        Self {
            commands: vec![cmd],
        }
    }

    /// Number of member commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True if the batch carries no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Iterates over the member commands in block order.
    pub fn iter(&self) -> std::slice::Iter<'_, C> {
        self.commands.iter()
    }

    /// The member commands in block order.
    pub fn commands(&self) -> &[C] {
        &self.commands
    }

    /// Consumes the batch, yielding the member commands in block order.
    pub fn into_commands(self) -> Vec<C> {
        self.commands
    }
}

impl<C> IntoIterator for Batch<C> {
    type Item = C;
    type IntoIter = std::vec::IntoIter<C>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

impl<'a, C> IntoIterator for &'a Batch<C> {
    type Item = &'a C;
    type IntoIter = std::slice::Iter<'a, C>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

impl<C: Command> Command for Batch<C> {
    /// Digest of a batch: the Merkle root over the member digests
    /// (domain-separated from raw member digests so a one-command block
    /// never collides with its member).
    fn digest(&self) -> Digest {
        let leaves: Vec<Digest> = self.commands.iter().map(Command::digest).collect();
        let root = MerkleTree::from_leaf_digests(leaves).root();
        sha256_parts(&[b"saguaro-batch", root.as_ref()])
    }
}

/// Leader-side accumulator that cuts [`Batch`]es from a stream of commands.
///
/// The owning adapter calls [`Batcher::push`] for every command routed to the
/// leader; a full block (`max_batch` members) is cut and returned
/// immediately.  When `push` leaves commands pending, the adapter is
/// responsible for scheduling a flush timer of `max_delay` and calling
/// [`Batcher::flush`] when it fires, so under-full blocks still commit within
/// a bounded delay.  With `max_batch = 1` every push cuts a single-command
/// block and the batcher is never left non-empty — the pipeline is then
/// step-for-step identical to an unbatched deployment.
#[derive(Clone, Debug)]
pub struct Batcher<C> {
    config: BatchConfig,
    pending: Vec<C>,
}

impl<C> Batcher<C> {
    /// Creates a batcher with the given knobs (`max_batch` is clamped to 1).
    pub fn new(config: BatchConfig) -> Self {
        let config = BatchConfig {
            max_batch: config.max_batch.max(1),
            ..config
        };
        Self {
            config,
            pending: Vec::new(),
        }
    }

    /// The knobs this batcher runs with.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Number of commands waiting for the next cut.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True if no commands are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Adds a command; returns a full block once `max_batch` members are
    /// pending, `None` while the block is still filling.
    pub fn push(&mut self, cmd: C) -> Option<Batch<C>> {
        self.pending.push(cmd);
        if self.pending.len() >= self.config.max_batch {
            self.cut()
        } else {
            None
        }
    }

    /// Cuts whatever is pending (the `max_delay` path); `None` when empty.
    pub fn flush(&mut self) -> Option<Batch<C>> {
        self.cut()
    }

    /// Puts a cut batch back at the head of the pending queue (used when the
    /// consensus engine refused the proposal, e.g. mid-view-change, so the
    /// commands are retried instead of destroyed).
    pub fn restore(&mut self, batch: Batch<C>) {
        let mut commands = batch.into_commands();
        commands.append(&mut self.pending);
        self.pending = commands;
    }

    fn cut(&mut self) -> Option<Batch<C>> {
        if self.pending.is_empty() {
            return None;
        }
        Some(Batch::new(std::mem::take(&mut self.pending)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Cmd = Vec<u8>;

    fn cmds(n: u8) -> Vec<Cmd> {
        (0..n).map(|i| vec![i]).collect()
    }

    #[test]
    fn digest_is_merkle_root_over_member_digests() {
        let batch = Batch::new(cmds(4));
        let leaves: Vec<Digest> = cmds(4).iter().map(Command::digest).collect();
        let root = MerkleTree::from_leaf_digests(leaves).root();
        assert_eq!(
            batch.digest(),
            sha256_parts(&[b"saguaro-batch", root.as_ref()])
        );
    }

    #[test]
    fn digest_depends_on_members_and_order() {
        let a = Batch::new(cmds(3));
        let mut rev = cmds(3);
        rev.reverse();
        assert_ne!(a.digest(), Batch::new(rev).digest());
        assert_ne!(a.digest(), Batch::new(cmds(4)).digest());
        assert_eq!(a.digest(), Batch::new(cmds(3)).digest());
    }

    #[test]
    fn single_command_batch_does_not_collide_with_member_digest() {
        let cmd: Cmd = b"tx".to_vec();
        assert_ne!(Batch::single(cmd.clone()).digest(), cmd.digest());
    }

    #[test]
    fn unbatched_push_cuts_immediately() {
        let mut b: Batcher<Cmd> = Batcher::new(BatchConfig::unbatched());
        let cut = b.push(b"a".to_vec()).expect("max_batch = 1 cuts per push");
        assert_eq!(cut.len(), 1);
        assert!(b.is_empty());
        assert!(b.flush().is_none());
    }

    #[test]
    fn push_cuts_at_max_batch_and_flush_cuts_early() {
        let mut b: Batcher<Cmd> = Batcher::new(BatchConfig::with_max_batch(3));
        assert!(b.push(vec![0]).is_none());
        assert!(b.push(vec![1]).is_none());
        assert_eq!(b.pending(), 2);
        let full = b.push(vec![2]).expect("third push fills the block");
        assert_eq!(full.commands(), &[vec![0], vec![1], vec![2]]);
        assert!(b.push(vec![3]).is_none());
        let partial = b.flush().expect("flush cuts the under-full block");
        assert_eq!(partial.into_commands(), vec![vec![3]]);
        assert!(b.flush().is_none());
    }

    #[test]
    fn restore_puts_commands_back_in_order() {
        let mut b: Batcher<Cmd> = Batcher::new(BatchConfig::with_max_batch(8));
        assert!(b.push(vec![0]).is_none());
        assert!(b.push(vec![1]).is_none());
        let cut = b.flush().expect("two pending");
        assert!(b.push(vec![2]).is_none());
        b.restore(cut);
        assert_eq!(b.pending(), 3);
        let all = b.flush().expect("restored + new");
        assert_eq!(all.into_commands(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn zero_max_batch_is_clamped_to_one() {
        let mut b: Batcher<Cmd> = Batcher::new(BatchConfig {
            max_batch: 0,
            max_delay: saguaro_types::Duration::from_millis(1),
        });
        assert_eq!(b.config().max_batch, 1);
        assert!(b.push(vec![9]).is_some());
    }
}
