//! PBFT for Byzantine domains.
//!
//! Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99) with the
//! standard three normal-case phases:
//!
//! 1. the primary assigns a sequence number and broadcasts `pre-prepare`;
//! 2. replicas broadcast `prepare`; a replica is *prepared* once it holds the
//!    pre-prepare and `2f` matching prepares;
//! 3. prepared replicas broadcast `commit`; once `2f + 1` matching commits
//!    are held the request is committed and executed in sequence order.
//!
//! Primary failure is handled by a view change: replicas that suspect the
//! primary broadcast `view-change` carrying their prepared certificates; the
//! new primary (round-robin) collects `2f + 1` of them and broadcasts
//! `new-view`, re-proposing every prepared request so nothing committed is
//! lost.  Periodic checkpoints garbage-collect the message log.
//!
//! Signatures are modelled at the message-count level (the CPU model charges
//! verification per signature); the state machine itself trusts the adapter
//! to have authenticated senders, mirroring how PBFT uses MACs/signatures.

use crate::checkpoint::CheckpointKeeper;
use crate::interface::{primary_for_view, Command, Step};
use saguaro_crypto::Digest;
use saguaro_types::{CheckpointConfig, NodeId, QuorumSpec, SeqNo, StateSnapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Messages exchanged by PBFT replicas within one domain.
#[derive(Clone, Debug, PartialEq)]
pub enum PbftMsg<C> {
    /// Primary → replicas: order `cmd` at `seq` in `view`.
    PrePrepare {
        /// View number.
        view: u64,
        /// Assigned sequence number.
        seq: SeqNo,
        /// The command.
        cmd: C,
    },
    /// Replica → all: I received a matching pre-prepare.
    Prepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: SeqNo,
        /// Digest of the command.
        digest: Digest,
    },
    /// Replica → all: I am prepared; commit once 2f + 1 of these are held.
    Commit {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: SeqNo,
        /// Digest of the command.
        digest: Digest,
    },
    /// Replica → all: the primary of `view` is suspected; move to `new_view`.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// Prepared certificates `(seq, view, command)` above the checkpoint.
        prepared: Vec<(SeqNo, u64, C)>,
        /// The sender's stable checkpoint sequence number.
        checkpoint: SeqNo,
    },
    /// New primary → all: the new view starts with this log suffix.
    NewView {
        /// The new view number.
        view: u64,
        /// Requests re-proposed by the new primary.
        log: Vec<(SeqNo, C)>,
        /// Checkpoint the log starts from.
        checkpoint: SeqNo,
    },
    /// Replica → all: I have executed up to `seq` with state digest `digest`.
    Checkpoint {
        /// Executed sequence number.
        seq: SeqNo,
        /// Digest of the replica state at `seq` (modelled, not verified here).
        digest: Digest,
    },
    /// Gap-stalled replica → an up-to-date peer: send me every committed
    /// entry above `above` (the below-low-water-mark catch-up PBFT describes
    /// as state transfer).
    StateRequest {
        /// The requester's delivery frontier.
        above: SeqNo,
    },
    /// Up-to-date peer → gap-stalled replica: the missing committed entries,
    /// certified as a unit (modelled as one certificate per entry).
    StateReply {
        /// Committed `(seq, command)` entries, contiguous from `above + 1`.
        entries: Vec<(SeqNo, C)>,
        /// The sender's delivery frontier.
        committed_to: SeqNo,
    },
    /// Up-to-date peer → deeply stalled replica whose requested frontier
    /// was pruned away: a checkpoint-certified application snapshot plus
    /// the short retained command tail above it (the catch-up commit of
    /// production PBFT implementations).
    SnapshotReply {
        /// The responder's snapshot at its snapshot point.
        snapshot: Arc<StateSnapshot>,
        /// Committed `(seq, command)` entries retained above the snapshot,
        /// contiguous from `snapshot.seq + 1`.
        tail: Vec<(SeqNo, C)>,
        /// The sender's delivery frontier.
        committed_to: SeqNo,
    },
}

#[derive(Clone, Debug)]
struct SlotState<C> {
    cmd: Option<C>,
    digest: Option<Digest>,
    pre_prepared_view: u64,
    prepares: BTreeSet<NodeId>,
    commits: BTreeSet<NodeId>,
    prepared: bool,
    committed: bool,
}

impl<C> Default for SlotState<C> {
    fn default() -> Self {
        Self {
            cmd: None,
            digest: None,
            pre_prepared_view: 0,
            prepares: BTreeSet::new(),
            commits: BTreeSet::new(),
            prepared: false,
            committed: false,
        }
    }
}

/// One replica's view-change vote: its prepared `(seq, view, command)`
/// entries plus its last delivered sequence number.
type ViewChangeVote<C> = (Vec<(SeqNo, u64, C)>, SeqNo);

/// A PBFT replica.
#[derive(Clone, Debug)]
pub struct PbftReplica<C> {
    me: NodeId,
    replicas: Vec<NodeId>,
    quorum: QuorumSpec,
    view: u64,
    next_seq: SeqNo,
    last_delivered: SeqNo,
    slots: BTreeMap<SeqNo, SlotState<C>>,
    view_change_votes: BTreeMap<u64, BTreeMap<NodeId, ViewChangeVote<C>>>,
    /// Replicas caught sending two *conflicting* view-change votes for the
    /// same view (a Byzantine twin certificate).  Both votes are discarded
    /// and further votes from the pair's sender are ignored for that view;
    /// the next view change starts from a clean slate.
    vc_tainted: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Conflicting certificates detected so far (twin view-change votes and
    /// rejected twin new-view messages).
    certificate_conflicts: u64,
    /// Highest view whose `NewView` certificate this replica has accepted;
    /// a second (possibly conflicting) certificate for the same view is
    /// never applied.
    last_new_view: u64,
    in_view_change: bool,
    /// Highest view this replica has voted a view change towards; repeated
    /// timeouts escalate past it so a crashed candidate primary cannot wedge
    /// the domain.
    highest_vc: u64,
    /// Checkpoint agreement (the classic PBFT low-water mark) plus
    /// state-transfer pacing.  The legacy configuration keeps the built-in
    /// interval of 128 with no state transfer.
    checkpoint: CheckpointKeeper,
    /// Every delivered entry, retained for serving state transfer (the
    /// durable chain; only populated when state transfer is enabled, and
    /// pruned below the keeper's prune floor under a finite retention
    /// window).
    delivered_log: BTreeMap<SeqNo, C>,
    /// The latest materialized (or catch-up-installed) application
    /// snapshot, used to answer requests below the retained tail.
    snapshot: Option<Arc<StateSnapshot>>,
}

impl<C: Command> PbftReplica<C> {
    /// Creates a replica.  `replicas` must be identical (and sorted) on all
    /// members of the domain.
    pub fn new(me: NodeId, mut replicas: Vec<NodeId>, quorum: QuorumSpec) -> Self {
        replicas.sort();
        Self {
            me,
            replicas,
            quorum,
            view: 0,
            next_seq: 1,
            last_delivered: 0,
            slots: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            vc_tainted: BTreeMap::new(),
            certificate_conflicts: 0,
            last_new_view: 0,
            in_view_change: false,
            highest_vc: 0,
            checkpoint: CheckpointKeeper::new(
                CheckpointConfig::legacy(),
                Some(CheckpointConfig::LEGACY_PBFT_INTERVAL),
            ),
            delivered_log: BTreeMap::new(),
            snapshot: None,
        }
    }

    /// Overrides the checkpoint interval without enabling state transfer
    /// (mainly for tests).
    pub fn with_checkpoint_interval(mut self, interval: SeqNo) -> Self {
        self.checkpoint = CheckpointKeeper::new(
            CheckpointConfig {
                interval: interval.max(1),
                state_transfer: false,
                retention: u64::MAX,
            },
            None,
        );
        self
    }

    /// Replaces the checkpoint / state-transfer configuration (builder
    /// style; `legacy` keeps the built-in interval of 128).
    pub fn with_checkpointing(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint =
            CheckpointKeeper::new(config, Some(CheckpointConfig::LEGACY_PBFT_INTERVAL));
        self
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary of the current view.
    pub fn primary(&self) -> NodeId {
        primary_for_view(self.view, &self.replicas)
    }

    /// True if this replica is the primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.me
    }

    /// Last delivered sequence number.
    pub fn last_delivered(&self) -> SeqNo {
        self.last_delivered
    }

    /// The last stable checkpoint.
    pub fn stable_checkpoint(&self) -> SeqNo {
        self.checkpoint.stable()
    }

    /// Number of log entries retained (bounded by checkpointing).
    pub fn log_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of prepared certificates a view-change vote sent right now
    /// would carry — bounded by the stable checkpoint.
    pub fn vote_entries(&self) -> usize {
        self.prepared_certificates().len()
    }

    /// Number of delivered entries retained in the durable chain.
    pub fn chain_len(&self) -> u64 {
        self.delivered_log.len() as u64
    }

    /// First sequence number still retained in the durable chain
    /// (`last_delivered + 1` when nothing is retained).
    pub fn chain_start(&self) -> SeqNo {
        self.delivered_log
            .keys()
            .next()
            .copied()
            .unwrap_or(self.last_delivered + 1)
    }

    /// The snapshot point currently held, if any.
    pub fn snapshot_seq(&self) -> Option<SeqNo> {
        self.snapshot.as_ref().map(|s| s.seq)
    }

    /// Stores the application snapshot the adapter materialized in response
    /// to a [`Step::TakeSnapshot`] (or obtained out of band), then prunes
    /// the entry-grained state the snapshot makes redundant.  Stale
    /// snapshots (at or below the held one) are ignored.
    pub fn store_snapshot(&mut self, snapshot: Arc<StateSnapshot>) {
        if self
            .snapshot
            .as_ref()
            .is_some_and(|s| s.seq >= snapshot.seq)
        {
            return;
        }
        self.snapshot = Some(snapshot);
        self.prune_entry_state();
    }

    /// Discards durable-chain entries no future correct request can need:
    /// everything at or below the keeper's prune floor, capped at the held
    /// snapshot point so the tail above the snapshot stays servable.  A
    /// no-op unless a finite retention window is configured.
    fn prune_entry_state(&mut self) {
        let Some(snapshot_seq) = self.snapshot_seq() else {
            return;
        };
        if !self.checkpoint.prunes() {
            return;
        }
        let floor = self
            .checkpoint
            .prune_floor(self.replicas.len())
            .min(snapshot_seq);
        if floor > 0 {
            self.delivered_log = self.delivered_log.split_off(&(floor + 1));
        }
    }

    fn quorum_2f_plus_1(&self) -> usize {
        self.quorum.commit_quorum()
    }

    fn prepared_quorum(&self) -> usize {
        // Pre-prepare from the primary + 2f prepares; we count distinct
        // prepare senders (including ourselves), so 2f are needed.
        2 * self.quorum.f
    }

    /// Proposes a command (primary only).
    pub fn propose(&mut self, cmd: C) -> Vec<Step<C, PbftMsg<C>>> {
        if !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = cmd.digest();
        {
            let slot = self.slots.entry(seq).or_default();
            slot.cmd = Some(cmd.clone());
            slot.digest = Some(digest);
            slot.pre_prepared_view = self.view;
            // The primary's pre-prepare counts as its prepare.
            slot.prepares.insert(self.me);
        }
        let mut steps = vec![Step::Broadcast {
            msg: PbftMsg::PrePrepare {
                view: self.view,
                seq,
                cmd,
            },
        }];
        steps.extend(self.check_prepared(seq));
        steps
    }

    /// Handles a protocol message from a peer replica.
    pub fn on_message(&mut self, from: NodeId, msg: PbftMsg<C>) -> Vec<Step<C, PbftMsg<C>>> {
        match msg {
            PbftMsg::PrePrepare { view, seq, cmd } => self.on_pre_prepare(from, view, seq, cmd),
            PbftMsg::Prepare { view, seq, digest } => self.on_prepare(from, view, seq, digest),
            PbftMsg::Commit { view, seq, digest } => self.on_commit(from, view, seq, digest),
            PbftMsg::ViewChange {
                new_view,
                prepared,
                checkpoint,
            } => self.on_view_change(from, new_view, prepared, checkpoint),
            PbftMsg::NewView {
                view,
                log,
                checkpoint,
            } => self.on_new_view(from, view, log, checkpoint),
            PbftMsg::Checkpoint { seq, digest } => self.on_checkpoint(from, seq, digest),
            PbftMsg::StateRequest { above } => self.on_state_request(from, above),
            PbftMsg::StateReply {
                entries,
                committed_to,
            } => self.on_state_reply(from, entries, committed_to),
            PbftMsg::SnapshotReply {
                snapshot,
                tail,
                committed_to,
            } => self.on_snapshot_reply(from, snapshot, tail, committed_to),
        }
    }

    fn on_pre_prepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        cmd: C,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if view != self.view
            || self.in_view_change
            || from != primary_for_view(view, &self.replicas)
            || seq <= self.checkpoint.stable()
        {
            return Vec::new();
        }
        let digest = cmd.digest();
        {
            let slot = self.slots.entry(seq).or_default();
            // A Byzantine primary might equivocate: if we already accepted a
            // different digest at this (view, seq), ignore the second one.
            if let Some(existing) = slot.digest {
                if existing != digest && slot.pre_prepared_view == view {
                    return Vec::new();
                }
            }
            slot.cmd = Some(cmd);
            slot.digest = Some(digest);
            slot.pre_prepared_view = view;
            slot.prepares.insert(self.me);
        }
        let mut steps = vec![Step::Broadcast {
            msg: PbftMsg::Prepare { view, seq, digest },
        }];
        steps.extend(self.check_prepared(seq));
        steps
    }

    fn on_prepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        digest: Digest,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if view != self.view || self.in_view_change || seq <= self.checkpoint.stable() {
            return Vec::new();
        }
        {
            let slot = self.slots.entry(seq).or_default();
            if slot.digest.is_some_and(|d| d != digest) {
                return Vec::new();
            }
            slot.prepares.insert(from);
        }
        self.check_prepared(seq)
    }

    /// If the slot just became prepared, broadcast our commit.
    fn check_prepared(&mut self, seq: SeqNo) -> Vec<Step<C, PbftMsg<C>>> {
        let view = self.view;
        let needed = self.prepared_quorum();
        let me = self.me;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        // Need the pre-prepare (command present) and 2f prepares besides it.
        if slot.prepared || slot.cmd.is_none() || slot.prepares.len() < needed.max(1) {
            return Vec::new();
        }
        slot.prepared = true;
        slot.commits.insert(me);
        let digest = slot.digest.expect("digest set with cmd");
        let mut steps = vec![Step::Broadcast {
            msg: PbftMsg::Commit { view, seq, digest },
        }];
        steps.extend(self.check_committed(seq));
        steps
    }

    fn on_commit(
        &mut self,
        from: NodeId,
        view: u64,
        seq: SeqNo,
        digest: Digest,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if view != self.view || self.in_view_change || seq <= self.checkpoint.stable() {
            return Vec::new();
        }
        {
            let slot = self.slots.entry(seq).or_default();
            if slot.digest.is_some_and(|d| d != digest) {
                return Vec::new();
            }
            slot.commits.insert(from);
        }
        self.check_committed(seq)
    }

    fn check_committed(&mut self, seq: SeqNo) -> Vec<Step<C, PbftMsg<C>>> {
        let needed = self.quorum_2f_plus_1();
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.committed || !slot.prepared || slot.cmd.is_none() || slot.commits.len() < needed {
            return Vec::new();
        }
        slot.committed = true;
        self.drain_deliveries()
    }

    fn drain_deliveries(&mut self) -> Vec<Step<C, PbftMsg<C>>> {
        let mut steps = Vec::new();
        loop {
            let next = self.last_delivered + 1;
            let Some(slot) = self.slots.get(&next) else {
                break;
            };
            if !slot.committed {
                break;
            }
            let command = slot.cmd.clone().expect("committed slot has a command");
            let digest = slot.digest.expect("committed slot has a digest");
            steps.push(Step::Deliver {
                seq: next,
                command: command.clone(),
            });
            self.last_delivered = next;
            steps.extend(self.note_executed(next, command, digest));
        }
        steps
    }

    /// Post-execution bookkeeping for one delivered entry: retain it for
    /// state transfer and announce a periodic checkpoint.
    fn note_executed(
        &mut self,
        seq: SeqNo,
        command: C,
        digest: Digest,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        let mut steps = Vec::new();
        if self.checkpoint.state_transfer_enabled() {
            self.delivered_log.insert(seq, command);
        }
        if self.checkpoint.announces_at(seq) {
            steps.push(Step::Broadcast {
                msg: PbftMsg::Checkpoint { seq, digest },
            });
            if self.checkpoint.prunes() {
                // The adapter materializes its state as of this point in
                // the stream and hands it back via `store_snapshot`.
                steps.push(Step::TakeSnapshot { seq });
            }
            steps.extend(self.on_checkpoint(self.me, seq, digest));
        }
        steps
    }

    /// Garbage-collects every slot at or below the stable checkpoint.
    fn gc_below_stable(&mut self) {
        let stable = self.checkpoint.stable();
        self.slots.retain(|s, _| *s > stable);
        self.prune_entry_state();
    }

    fn on_checkpoint(
        &mut self,
        from: NodeId,
        seq: SeqNo,
        _digest: Digest,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if from != self.me {
            // A peer's announced floor proves `seq` committed there.
            self.checkpoint.note_hint(seq, from);
        }
        let quorum = self.quorum_2f_plus_1();
        if self
            .checkpoint
            .record_vote(from, seq, quorum, self.last_delivered)
        {
            self.gc_below_stable();
        }
        // Even a non-stabilising announcement can raise the prune floor
        // (the announcer's executed floor is new evidence).
        self.prune_entry_state();
        self.maybe_request_state()
    }

    /// Fetches missing committed entries when commit-frontier evidence runs
    /// ahead of a gap this replica cannot fill from its own slots (e.g.
    /// after a `NewView` jumped the stable checkpoint past its frontier).
    fn maybe_request_state(&mut self) -> Vec<Step<C, PbftMsg<C>>> {
        let next_commits = self
            .slots
            .get(&(self.last_delivered + 1))
            .is_some_and(|slot| slot.committed);
        match self
            .checkpoint
            .should_request(self.last_delivered, next_commits)
        {
            Some(peer) if peer != self.me => vec![Step::Send {
                to: peer,
                msg: PbftMsg::StateRequest {
                    above: self.last_delivered,
                },
            }],
            _ => Vec::new(),
        }
    }

    fn on_state_request(&mut self, from: NodeId, above: SeqNo) -> Vec<Step<C, PbftMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        if above >= self.last_delivered {
            return Vec::new(); // nothing the requester is missing
        }
        if self.delivered_log.contains_key(&(above + 1)) {
            // The full tail above the requester's frontier is retained:
            // the historical full-replay reply.
            let entries: Vec<(SeqNo, C)> = self
                .delivered_log
                .range(above + 1..)
                .map(|(seq, cmd)| (*seq, cmd.clone()))
                .collect();
            return vec![Step::Send {
                to: from,
                msg: PbftMsg::StateReply {
                    entries,
                    committed_to: self.last_delivered,
                },
            }];
        }
        // The requested frontier was pruned away: serve the snapshot plus
        // the retained tail above it instead of a full replay.
        match &self.snapshot {
            Some(snapshot) if snapshot.seq > above => {
                let tail: Vec<(SeqNo, C)> = self
                    .delivered_log
                    .range(snapshot.seq + 1..)
                    .map(|(seq, cmd)| (*seq, cmd.clone()))
                    .collect();
                vec![Step::Send {
                    to: from,
                    msg: PbftMsg::SnapshotReply {
                        snapshot: snapshot.clone(),
                        tail,
                        committed_to: self.last_delivered,
                    },
                }]
            }
            _ => Vec::new(),
        }
    }

    fn on_state_reply(
        &mut self,
        from: NodeId,
        entries: Vec<(SeqNo, C)>,
        committed_to: SeqNo,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        self.checkpoint.note_hint(committed_to, from);
        let mut steps = Vec::new();
        let mut applied = false;
        for (seq, command) in entries {
            if seq != self.last_delivered + 1 {
                continue; // already executed, or non-contiguous garbage
            }
            self.slots.remove(&seq);
            let digest = command.digest();
            steps.push(Step::Deliver {
                seq,
                command: command.clone(),
            });
            self.last_delivered = seq;
            applied = true;
            steps.extend(self.note_executed(seq, command, digest));
        }
        if applied {
            self.checkpoint.transfer_applied();
            steps.extend(self.drain_deliveries());
        }
        steps.extend(self.maybe_request_state());
        steps
    }

    fn on_snapshot_reply(
        &mut self,
        from: NodeId,
        snapshot: Arc<StateSnapshot>,
        tail: Vec<(SeqNo, C)>,
        committed_to: SeqNo,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if !self.checkpoint.state_transfer_enabled() {
            return Vec::new();
        }
        self.checkpoint.note_hint(committed_to, from);
        let mut steps = Vec::new();
        let mut applied = false;
        if snapshot.seq > self.last_delivered {
            // Jump the execution frontier to the snapshot point: everything
            // at or below it is superseded by the snapshot's state.  The
            // snapshot was materialized at a checkpoint certified by a
            // `2f + 1` quorum, so adopting it as our stable floor is sound.
            self.last_delivered = snapshot.seq;
            self.next_seq = self.next_seq.max(snapshot.seq + 1);
            self.slots.retain(|seq, _| *seq > snapshot.seq);
            self.delivered_log = self.delivered_log.split_off(&(snapshot.seq + 1));
            self.checkpoint.adopt_stable(snapshot.seq);
            self.snapshot = Some(snapshot.clone());
            steps.push(Step::InstallSnapshot { snapshot });
            applied = true;
        }
        // The retained tail replays through the normal delivery path.
        for (seq, command) in tail {
            if seq != self.last_delivered + 1 {
                continue; // already executed, or non-contiguous garbage
            }
            self.slots.remove(&seq);
            let digest = command.digest();
            steps.push(Step::Deliver {
                seq,
                command: command.clone(),
            });
            self.last_delivered = seq;
            applied = true;
            steps.extend(self.note_executed(seq, command, digest));
        }
        if applied {
            self.checkpoint.transfer_applied();
            steps.extend(self.drain_deliveries());
        }
        steps.extend(self.maybe_request_state());
        steps
    }

    /// Called by the adapter when the progress timer fires while requests are
    /// outstanding: suspect the primary and start a view change.
    pub fn on_progress_timeout(&mut self) -> Vec<Step<C, PbftMsg<C>>> {
        if self.is_primary() && !self.in_view_change {
            return Vec::new();
        }
        // Escalate past the last attempted view so a crashed candidate
        // primary is skipped on the next timeout instead of retried forever.
        self.start_view_change(self.view.max(self.highest_vc) + 1)
    }

    fn prepared_certificates(&self) -> Vec<(SeqNo, u64, C)> {
        // Every prepared entry above the stable checkpoint is included,
        // executed ones too: quorum intersection then guarantees the new
        // primary's merge sees each committed value, so an executed sequence
        // number can never be re-assigned to a different command while some
        // straggler still waits for it.
        self.slots
            .iter()
            .filter(|(seq, slot)| {
                **seq > self.checkpoint.stable() && slot.prepared && slot.cmd.is_some()
            })
            .map(|(seq, slot)| {
                (
                    *seq,
                    slot.pre_prepared_view,
                    slot.cmd.clone().expect("prepared slot has a command"),
                )
            })
            .collect()
    }

    fn start_view_change(&mut self, new_view: u64) -> Vec<Step<C, PbftMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.in_view_change = true;
        self.highest_vc = self.highest_vc.max(new_view);
        let prepared = self.prepared_certificates();
        let stable = self.checkpoint.stable();
        let msg = PbftMsg::ViewChange {
            new_view,
            prepared: prepared.clone(),
            checkpoint: stable,
        };
        let mut steps = self.record_view_change_vote(self.me, new_view, prepared, stable);
        steps.insert(0, Step::Broadcast { msg });
        steps
    }

    fn on_view_change(
        &mut self,
        from: NodeId,
        new_view: u64,
        prepared: Vec<(SeqNo, u64, C)>,
        checkpoint: SeqNo,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if new_view <= self.view {
            return Vec::new();
        }
        let mut steps = Vec::new();
        // Join the view change once f + 1 distinct replicas (or a timeout)
        // suggest it; for simplicity we join on first receipt, which is safe
        // (liveness is driven by timeouts either way).  Re-join whenever a
        // peer escalates beyond our last attempt.
        if !self.in_view_change || new_view > self.highest_vc {
            steps.extend(self.start_view_change(new_view));
        }
        steps.extend(self.record_view_change_vote(from, new_view, prepared, checkpoint));
        steps
    }

    /// True if two view-change votes carry different certificates (compared
    /// by digest, so only genuine payload conflicts count).
    fn votes_conflict(a: &ViewChangeVote<C>, b: &ViewChangeVote<C>) -> bool {
        a.1 != b.1
            || a.0.len() != b.0.len()
            || a.0
                .iter()
                .zip(b.0.iter())
                .any(|((s1, v1, c1), (s2, v2, c2))| {
                    s1 != s2 || v1 != v2 || c1.digest() != c2.digest()
                })
    }

    /// Conflicting certificates (twin view-change votes, rejected twin
    /// new-view messages) this replica has detected and discarded.
    pub fn certificate_conflicts(&self) -> u64 {
        self.certificate_conflicts
    }

    fn record_view_change_vote(
        &mut self,
        from: NodeId,
        new_view: u64,
        prepared: Vec<(SeqNo, u64, C)>,
        checkpoint: SeqNo,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        // Defence against equivocating view-change certificates: a sender
        // whose earlier vote for this view conflicts with the new one is a
        // provable equivocator — discard both votes and ignore the sender
        // for this view.  Identical re-deliveries are harmless overwrites,
        // and a replica always trusts its own vote.
        if self
            .vc_tainted
            .get(&new_view)
            .is_some_and(|t| t.contains(&from))
        {
            return Vec::new();
        }
        let vote = (prepared, checkpoint);
        let votes = self.view_change_votes.entry(new_view).or_default();
        if from != self.me {
            if let Some(existing) = votes.get(&from) {
                if Self::votes_conflict(existing, &vote) {
                    votes.remove(&from);
                    self.vc_tainted.entry(new_view).or_default().insert(from);
                    self.certificate_conflicts += 1;
                    return Vec::new();
                }
            }
        }
        votes.insert(from, vote);
        let votes = &self.view_change_votes[&new_view];
        let i_am_new_primary = primary_for_view(new_view, &self.replicas) == self.me;
        if !i_am_new_primary || votes.len() < self.quorum_2f_plus_1() {
            return Vec::new();
        }
        // Merge prepared certificates, preferring the highest view per slot.
        let mut merged: BTreeMap<SeqNo, (u64, C)> = BTreeMap::new();
        let mut checkpoint_frontier = self.checkpoint.stable();
        let mut checkpoint_floor = self.checkpoint.stable();
        let mut best_voter: Option<(SeqNo, NodeId)> = None;
        for (voter, (prep, cp)) in votes.iter() {
            checkpoint_frontier = checkpoint_frontier.max(*cp);
            checkpoint_floor = checkpoint_floor.min(*cp);
            if best_voter.is_none() || best_voter.is_some_and(|(best, _)| *cp > best) {
                best_voter = Some((*cp, *voter));
            }
            for (seq, v, cmd) in prep {
                match merged.get(seq) {
                    Some((existing, _)) if existing >= v => {}
                    _ => {
                        merged.insert(*seq, (*v, cmd.clone()));
                    }
                }
            }
        }
        // A voter checkpointed past this new primary's own frontier: the
        // primary itself may need state transfer to resume execution.
        if let Some((cp, voter)) = best_voter {
            if voter != self.me {
                self.checkpoint.note_hint(cp, voter);
            }
        }
        self.view = new_view;
        self.in_view_change = false;
        self.view_change_votes.remove(&new_view);
        // Taint records for completed views are no longer consulted.
        self.vc_tainted.retain(|v, _| *v > new_view);

        // The re-proposed log starts at the *lowest* voter checkpoint (not
        // the highest): a straggling voter above the low checkpoint but
        // behind the high one still needs those entries re-run, and
        // re-preparing an entry a peer already checkpointed is ignored by
        // that peer's `seq <= stable_checkpoint` guards.
        let log: Vec<(SeqNo, C)> = merged
            .iter()
            .filter(|(seq, _)| **seq > checkpoint_floor)
            .map(|(seq, (_, cmd))| (*seq, cmd.clone()))
            .collect();
        // Re-install the entries locally as pre-prepared in the new view.
        for (seq, cmd) in &log {
            let digest = cmd.digest();
            let slot = self.slots.entry(*seq).or_default();
            slot.cmd = Some(cmd.clone());
            slot.digest = Some(digest);
            slot.pre_prepared_view = new_view;
            // Committed entries keep their `committed` flag; only the vote
            // sets restart for the new view.
            slot.prepares.clear();
            slot.commits.clear();
            slot.prepared = false;
            slot.prepares.insert(self.me);
        }
        self.next_seq = self
            .slots
            .keys()
            .max()
            .copied()
            .unwrap_or(checkpoint_frontier)
            .max(checkpoint_frontier)
            + 1;

        let mut steps = vec![
            Step::ViewChanged {
                view: new_view,
                primary: self.me,
            },
            Step::Broadcast {
                msg: PbftMsg::NewView {
                    view: new_view,
                    log,
                    checkpoint: checkpoint_frontier,
                },
            },
        ];
        // A new primary elected while itself below the checkpoint frontier
        // fetches the missing prefix instead of stalling its execution.
        steps.extend(self.maybe_request_state());
        steps
    }

    fn on_new_view(
        &mut self,
        from: NodeId,
        view: u64,
        log: Vec<(SeqNo, C)>,
        checkpoint: SeqNo,
    ) -> Vec<Step<C, PbftMsg<C>>> {
        if view < self.view
            || view <= self.last_new_view
            || from != primary_for_view(view, &self.replicas)
        {
            return Vec::new();
        }
        // Defence against an equivocating new primary: reject a `NewView`
        // that re-proposes a *different* command for a sequence number this
        // replica holds a prepared certificate for — a twin certificate
        // cannot overwrite prepared state.  (Only one `NewView` per view is
        // ever applied; see the `last_new_view` guard above.)
        let conflicts = log.iter().any(|(seq, cmd)| {
            self.slots
                .get(seq)
                .is_some_and(|slot| slot.prepared && slot.digest.is_some_and(|d| d != cmd.digest()))
        });
        if conflicts {
            self.certificate_conflicts += 1;
            return Vec::new();
        }
        self.last_new_view = view;
        self.view = view;
        self.in_view_change = false;
        // The new primary certified this floor with 2f + 1 view-change
        // votes; adopt it.  A replica whose frontier is below the adopted
        // floor is now formally gap-stalled (its missing slots may be
        // garbage-collected everywhere) — the state-transfer request at the
        // end of this handler is what un-sticks it.
        self.checkpoint.adopt_stable(checkpoint);
        self.checkpoint.note_hint(checkpoint, from);
        let mut steps = vec![Step::ViewChanged {
            view,
            primary: from,
        }];
        for (seq, cmd) in log {
            let digest = cmd.digest();
            {
                let slot = self.slots.entry(seq).or_default();
                slot.cmd = Some(cmd);
                slot.digest = Some(digest);
                slot.pre_prepared_view = view;
                slot.prepared = false;
                slot.prepares.clear();
                slot.commits.clear();
                slot.prepares.insert(self.me);
            }
            steps.push(Step::Broadcast {
                msg: PbftMsg::Prepare { view, seq, digest },
            });
            steps.extend(self.check_prepared(seq));
        }
        steps.extend(self.maybe_request_state());
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saguaro_types::{DomainId, FailureModel};
    use std::collections::VecDeque;

    type Cmd = Vec<u8>;

    fn make_domain(n: u16) -> (Vec<NodeId>, Vec<PbftReplica<Cmd>>) {
        let d = DomainId::new(1, 0);
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
        let quorum = QuorumSpec::for_size(FailureModel::Byzantine, n as usize);
        let reps = nodes
            .iter()
            .map(|id| PbftReplica::new(*id, nodes.clone(), quorum).with_checkpoint_interval(4))
            .collect();
        (nodes, reps)
    }

    /// Per-origin initial protocol steps fed into the test network.
    type InitialSteps = Vec<(usize, Vec<Step<Cmd, PbftMsg<Cmd>>>)>;

    fn run_network(
        nodes: &[NodeId],
        reps: &mut [PbftReplica<Cmd>],
        initial: InitialSteps,
        down: &[usize],
    ) -> Vec<Vec<(SeqNo, Cmd)>> {
        let mut delivered = vec![Vec::new(); reps.len()];
        let mut queue: VecDeque<(usize, NodeId, PbftMsg<Cmd>)> = VecDeque::new();
        let index_of = |id: NodeId| nodes.iter().position(|n| *n == id).unwrap();
        let handle = |origin: usize,
                      steps: Vec<Step<Cmd, PbftMsg<Cmd>>>,
                      queue: &mut VecDeque<(usize, NodeId, PbftMsg<Cmd>)>,
                      delivered: &mut Vec<Vec<(SeqNo, Cmd)>>| {
            for step in steps {
                match step {
                    Step::Send { to, msg } => queue.push_back((index_of(to), nodes[origin], msg)),
                    Step::Broadcast { msg } => {
                        for (i, _) in nodes.iter().enumerate() {
                            if i != origin {
                                queue.push_back((i, nodes[origin], msg.clone()));
                            }
                        }
                    }
                    Step::Deliver { seq, command } => delivered[origin].push((seq, command)),
                    Step::ViewChanged { .. } | Step::InstallSnapshot { .. } => {}
                    Step::TakeSnapshot { .. } => {} // materialized by the driver below
                }
            }
        };
        // Stand-in for the adapter layer: materialize a (contents-free)
        // snapshot whenever the engine asks for one.
        let absorb_snapshots = |rep: &mut PbftReplica<Cmd>, steps: &[Step<Cmd, PbftMsg<Cmd>>]| {
            for step in steps {
                if let Step::TakeSnapshot { seq } = step {
                    rep.store_snapshot(Arc::new(StateSnapshot {
                        seq: *seq,
                        ..StateSnapshot::default()
                    }));
                }
            }
        };
        for (origin, steps) in initial {
            absorb_snapshots(&mut reps[origin], &steps);
            handle(origin, steps, &mut queue, &mut delivered);
        }
        let mut budget = 200_000;
        while let Some((to, from, msg)) = queue.pop_front() {
            budget -= 1;
            assert!(budget > 0, "message storm");
            if down.contains(&to) {
                continue;
            }
            let steps = reps[to].on_message(from, msg);
            absorb_snapshots(&mut reps[to], &steps);
            handle(to, steps, &mut queue, &mut delivered);
        }
        delivered
    }

    #[test]
    fn normal_case_commits_on_all_replicas() {
        let (nodes, mut reps) = make_domain(4);
        let steps = reps[0].propose(b"tx1".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        for d in &delivered {
            assert_eq!(d, &vec![(1, b"tx1".to_vec())]);
        }
    }

    #[test]
    fn delivers_many_commands_in_order() {
        let (nodes, mut reps) = make_domain(4);
        let mut initial = Vec::new();
        for i in 0..10u8 {
            initial.push((0, reps[0].propose(vec![i])));
        }
        let delivered = run_network(&nodes, &mut reps, initial, &[]);
        let expected: Vec<(SeqNo, Cmd)> = (0..10u8).map(|i| (i as u64 + 1, vec![i])).collect();
        for d in &delivered {
            assert_eq!(d, &expected);
        }
    }

    #[test]
    fn tolerates_f_silent_backups() {
        let (nodes, mut reps) = make_domain(4);
        let steps = reps[0].propose(b"tx".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[3]);
        for (i, d) in delivered.iter().enumerate() {
            if i == 3 {
                assert!(d.is_empty());
            } else {
                assert_eq!(d.len(), 1, "replica {i}");
            }
        }
    }

    #[test]
    fn does_not_commit_with_more_than_f_faulty() {
        let (nodes, mut reps) = make_domain(4);
        let steps = reps[0].propose(b"tx".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[2, 3]);
        assert!(delivered.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn equivocating_pre_prepare_is_ignored() {
        let (nodes, mut reps) = make_domain(4);
        // Deliver a legitimate pre-prepare to replica 1 ...
        let _ = reps[1].on_message(
            nodes[0],
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                cmd: b"first".to_vec(),
            },
        );
        // ... then an equivocating one for the same (view, seq).
        let steps = reps[1].on_message(
            nodes[0],
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                cmd: b"second".to_vec(),
            },
        );
        assert!(steps.is_empty());
    }

    #[test]
    fn twin_view_change_votes_taint_the_sender_for_that_view_only() {
        let (nodes, mut reps) = make_domain(4);
        // Node 1 is the new primary for view 1.  The first vote joins
        // replica 1 into the view change (its own vote is recorded too).
        let vote = |prepared: Vec<(SeqNo, u64, Cmd)>| PbftMsg::ViewChange {
            new_view: 1,
            prepared,
            checkpoint: 0,
        };
        let _ = reps[1].on_message(nodes[3], vote(vec![(1, 0, b"a".to_vec())]));
        // A conflicting twin from the same sender: both votes are discarded
        // and the sender is ignored for this view.
        let _ = reps[1].on_message(nodes[3], vote(vec![(1, 0, b"b".to_vec())]));
        assert_eq!(reps[1].certificate_conflicts(), 1);
        // Further deliveries from the tainted sender are dropped outright —
        // they must not count towards the quorum.
        let _ = reps[1].on_message(nodes[3], vote(vec![(1, 0, b"a".to_vec())]));
        assert_eq!(reps[1].view(), 0, "own + tainted vote must not elect");
        // Honest votes from the remaining replicas still complete the view
        // change: the defence does not cost liveness.
        let _ = reps[1].on_message(nodes[0], vote(Vec::new()));
        let steps = reps[1].on_message(nodes[2], vote(Vec::new()));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::ViewChanged { view: 1, .. })));
        assert!(reps[1].is_primary());
        assert_eq!(reps[1].view(), 1);
    }

    #[test]
    fn equivocating_new_view_cannot_overwrite_prepared_state() {
        let (nodes, mut reps) = make_domain(4);
        // Prepare (view 0, seq 1, "good") at replica 2: the pre-prepare from
        // the primary plus prepares from two peers form the certificate.
        let _ = reps[2].on_message(
            nodes[0],
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                cmd: b"good".to_vec(),
            },
        );
        let digest = b"good".to_vec().digest();
        for j in [1usize, 3] {
            let _ = reps[2].on_message(
                nodes[j],
                PbftMsg::Prepare {
                    view: 0,
                    seq: 1,
                    digest,
                },
            );
        }
        // The view-1 primary equivocates: its NewView re-proposes a
        // different command for the prepared slot.  The twin is rejected.
        let steps = reps[2].on_message(
            nodes[1],
            PbftMsg::NewView {
                view: 1,
                log: vec![(1, b"evil".to_vec())],
                checkpoint: 0,
            },
        );
        assert!(steps.is_empty());
        assert_eq!(reps[2].certificate_conflicts(), 1);
        assert_eq!(reps[2].view(), 0);
        // A NewView consistent with the prepared state is still accepted:
        // rejecting the twin does not burn the view.
        let _ = reps[2].on_message(
            nodes[1],
            PbftMsg::NewView {
                view: 1,
                log: vec![(1, b"good".to_vec())],
                checkpoint: 0,
            },
        );
        assert_eq!(reps[2].view(), 1);
    }

    #[test]
    fn pre_prepare_from_non_primary_is_rejected() {
        let (nodes, mut reps) = make_domain(4);
        let steps = reps[2].on_message(
            nodes[1],
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                cmd: b"evil".to_vec(),
            },
        );
        assert!(steps.is_empty());
    }

    #[test]
    // Index-based loops mirror the replica-numbering of the scenario.
    #[allow(clippy::needless_range_loop)]
    fn view_change_elects_new_primary_and_preserves_prepared_requests() {
        let (nodes, mut reps) = make_domain(4);
        // Commit one request, then let the primary go silent with another
        // request only partially processed.
        let s0 = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, s0)], &[]);

        // Prepare (but do not commit) a second request at replicas 1..3 by
        // delivering the pre-prepare and the prepares by hand, discarding the
        // resulting commit broadcasts so the request stays uncommitted.
        let pp = PbftMsg::PrePrepare {
            view: 0,
            seq: 2,
            cmd: b"prepared-only".to_vec(),
        };
        let digest = b"prepared-only".to_vec().digest();
        for i in 1..4 {
            let _ = reps[i].on_message(nodes[0], pp.clone());
        }
        for i in 1..4usize {
            for j in 1..4usize {
                if i != j {
                    let _ = reps[i].on_message(
                        nodes[j],
                        PbftMsg::Prepare {
                            view: 0,
                            seq: 2,
                            digest,
                        },
                    );
                }
            }
        }

        // Now the primary is suspected; replicas 1-3 time out.
        let vc: Vec<_> = (1..4).map(|i| (i, reps[i].on_progress_timeout())).collect();
        let delivered = run_network(&nodes, &mut reps, vc, &[0]);

        // View 1 with primary node 1.
        assert_eq!(reps[1].view(), 1);
        assert!(reps[1].is_primary());
        // The prepared request survives the view change and commits.
        for i in 1..4 {
            assert!(
                delivered[i].iter().any(|(_, c)| c == b"prepared-only"),
                "replica {i} lost the prepared request"
            );
        }

        // The new primary keeps making progress.
        let s1 = reps[1].propose(b"after-vc".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(1, s1)], &[0]);
        for i in 1..4 {
            assert!(delivered[i].iter().any(|(_, c)| c == b"after-vc"));
        }
    }

    #[test]
    fn checkpointing_garbage_collects_the_log() {
        let (nodes, mut reps) = make_domain(4);
        let mut initial = Vec::new();
        for i in 0..8u8 {
            initial.push((0, reps[0].propose(vec![i])));
        }
        run_network(&nodes, &mut reps, initial, &[]);
        // Interval is 4: after 8 commits the stable checkpoint is 8 and the
        // log holds nothing below it.
        for r in &reps {
            assert_eq!(r.last_delivered(), 8);
            assert_eq!(r.stable_checkpoint(), 8);
            assert_eq!(r.log_len(), 0, "log not garbage collected");
        }
    }

    #[test]
    fn primary_does_not_suspect_itself() {
        let (_nodes, mut reps) = make_domain(4);
        assert!(reps[0].on_progress_timeout().is_empty());
        assert!(!reps[1].on_progress_timeout().is_empty());
    }

    #[test]
    fn repeated_timeouts_escalate_past_a_crashed_candidate() {
        // |p| = 7 tolerates f = 2.  The primary (0) and the view-1 candidate
        // (1) both crash: the five live replicas' first timeout targets view
        // 1 and stalls; the second escalates to view 2, which forms with
        // exactly the 2f + 1 = 5 live replicas.
        let (nodes, mut reps) = make_domain(7);
        let steps = reps[0].propose(b"committed".to_vec());
        run_network(&nodes, &mut reps, vec![(0, steps)], &[]);

        let vc: InitialSteps = (2..7).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 0, "view 1 must not form without node 1");

        let vc: InitialSteps = (2..7).map(|i| (i, reps[i].on_progress_timeout())).collect();
        run_network(&nodes, &mut reps, vc, &[0, 1]);
        assert_eq!(reps[2].view(), 2);
        assert!(reps[2].is_primary());

        let steps = reps[2].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(2, steps)], &[0, 1]);
        for (i, d) in delivered.iter().enumerate().skip(3) {
            assert!(
                d.iter().any(|(_, c)| c == b"after"),
                "replica {i} missed the post-escalation commit"
            );
        }
    }

    #[test]
    fn gap_stalled_replica_catches_up_via_state_transfer() {
        let (nodes, mut reps) = make_domain(4);
        let mut reps: Vec<PbftReplica<Cmd>> = reps
            .drain(..)
            .map(|r| r.with_checkpointing(saguaro_types::CheckpointConfig::every(2)))
            .collect();
        // Replica 3 misses six commits; the three survivors stabilise
        // checkpoint 6 (2f + 1 = 3 announcements) and collect their slots.
        let initial: InitialSteps = (0..6u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[3]);
        assert_eq!(reps[0].stable_checkpoint(), 6);
        assert_eq!(reps[0].log_len(), 0);
        assert_eq!(reps[3].last_delivered(), 0);

        // A checkpoint announcement reaches the laggard: it fetches the
        // missed prefix and replays it in order.
        let steps = reps[3].on_message(
            nodes[0],
            PbftMsg::Checkpoint {
                seq: 6,
                digest: saguaro_crypto::sha256(b"modelled"),
            },
        );
        assert!(
            steps.iter().any(|s| matches!(
                s,
                Step::Send {
                    msg: PbftMsg::StateRequest { above: 0 },
                    ..
                }
            )),
            "gap-stalled replica must fetch state: {steps:?}"
        );
        let delivered = run_network(&nodes, &mut reps, vec![(3, steps)], &[]);
        assert_eq!(
            delivered[3],
            (0..6u8)
                .map(|i| (i as u64 + 1, vec![i]))
                .collect::<Vec<_>>()
        );
        assert_eq!(reps[3].last_delivered(), 6);

        // Execution resumes on all four replicas.
        let steps = reps[0].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        assert!(delivered[3]
            .iter()
            .any(|(seq, c)| *seq == 7 && c == b"after"));
    }

    #[test]
    fn pruned_responder_serves_snapshot_catch_up() {
        let (nodes, mut reps) = make_domain(4);
        let mut reps: Vec<PbftReplica<Cmd>> = reps
            .drain(..)
            .map(|r| {
                r.with_checkpointing(saguaro_types::CheckpointConfig::every(2).with_retention(2))
            })
            .collect();
        // Replica 3 misses twelve commits; the survivors stabilise
        // checkpoints, snapshot, and prune the chain prefix — the missed
        // prefix can no longer be replayed entry by entry.
        let initial: InitialSteps = (0..12u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[3]);
        assert_eq!(reps[0].last_delivered(), 12);
        assert!(reps[0].chain_start() > 1, "responder's log must be pruned");
        assert!(reps[0].snapshot_seq().is_some());
        assert_eq!(reps[3].last_delivered(), 0);

        // A checkpoint announcement reaches the laggard: the pruned
        // responder answers with a snapshot plus the retained tail.
        let steps = reps[3].on_message(
            nodes[0],
            PbftMsg::Checkpoint {
                seq: 12,
                digest: saguaro_crypto::sha256(b"modelled"),
            },
        );
        assert!(
            steps.iter().any(|s| matches!(
                s,
                Step::Send {
                    msg: PbftMsg::StateRequest { above: 0 },
                    ..
                }
            )),
            "gap-stalled replica must fetch state: {steps:?}"
        );
        let delivered = run_network(&nodes, &mut reps, vec![(3, steps)], &[]);
        assert_eq!(reps[3].last_delivered(), 12);
        assert_eq!(
            reps[3].snapshot_seq().unwrap_or(0) + delivered[3].len() as u64,
            12,
            "snapshot + replayed tail must cover the whole gap"
        );

        // Execution resumes on all four replicas.
        let steps = reps[0].propose(b"after".to_vec());
        let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
        assert!(delivered[3]
            .iter()
            .any(|(seq, c)| *seq == 13 && c == b"after"));
    }

    #[test]
    fn finite_retention_bounds_the_delivered_chain() {
        let (nodes, mut reps) = make_domain(4);
        let mut reps: Vec<PbftReplica<Cmd>> = reps
            .drain(..)
            .map(|r| {
                r.with_checkpointing(saguaro_types::CheckpointConfig::every(2).with_retention(2))
            })
            .collect();
        let initial: InitialSteps = (0..20u8).map(|i| (0, reps[0].propose(vec![i]))).collect();
        run_network(&nodes, &mut reps, initial, &[]);
        for r in &reps {
            assert_eq!(r.last_delivered(), 20);
            assert!(
                r.chain_len() <= 4,
                "retention 2 (interval 2) must bound the chain, got {}",
                r.chain_len()
            );
            assert!(r.chain_start() > 1, "the chain prefix must be pruned");
        }
    }

    #[test]
    fn bigger_domains_commit_too() {
        // |p| = 7 and 13 are the Figure 13 settings.
        for n in [7u16, 13] {
            let (nodes, mut reps) = make_domain(n);
            let steps = reps[0].propose(b"tx".to_vec());
            let delivered = run_network(&nodes, &mut reps, vec![(0, steps)], &[]);
            assert!(delivered.iter().all(|d| d.len() == 1), "n={n}");
        }
    }
}
