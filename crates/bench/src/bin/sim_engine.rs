//! Engine wall-clock benchmark: how fast does the simulator itself run?
//!
//! Two measurements, both on the figure-7 topology (crash-only domains,
//! nearby regions, 20 % cross-domain micropayments):
//!
//! 1. **Hot path** — one single-seeded run; events processed divided by
//!    wall-clock time gives events/sec.  Identical seeds process an
//!    identical event count, so this number tracks pure runtime cost.
//! 2. **Sweep** — the full six-series figure-7(a) grid, which exercises the
//!    parallel sweep fan-out on multi-core hosts.
//!
//! `--json <path>` merges an `engine` section into the shared
//! `BENCH_results.json` (other sections are preserved).  `--floor <path>`
//! reads a checked-in floor (`{"events_per_sec": N}`) and exits non-zero if
//! the measured rate fell more than 30 % below it, so CI catches engine
//! regressions without flaking on runner-speed variance.

use saguaro_bench::{
    emit, json_path_from_args, options_from_args, runtime_json, timed_run, JsonReport,
};
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::figures::{figure7, render_table, FigureOptions};
use saguaro_sim::json::JsonValue;
use saguaro_sim::protocol::ProtocolKind;
use std::path::PathBuf;
use std::time::Instant;

/// Tolerated slowdown against the checked-in floor before CI fails.
const FLOOR_TOLERANCE: f64 = 0.70;

fn floor_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--floor")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Reads `{"events_per_sec": N}` from the floor file.
fn read_floor(path: &PathBuf) -> Option<f64> {
    let parsed = JsonValue::parse(&std::fs::read_to_string(path).ok()?)?;
    let JsonValue::Object(entries) = parsed else {
        return None;
    };
    entries.iter().find_map(|(k, v)| match v {
        JsonValue::Num(n) if k == "events_per_sec" => Some(*n),
        _ => None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);

    // 1. Hot path: one figure-7-style run.
    let mut spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator).cross_domain(0.2);
    spec.seed = options.seed;
    if options.quick {
        spec = spec.quick().load(1_200.0);
    }
    let run = timed_run(&spec);
    let events_per_sec = run.events_per_sec();

    // 2. Sweep: the six-curve figure-7(a) grid (parallel across cores).
    let sweep_options = FigureOptions {
        loads: options.loads.clone(),
        quick: options.quick,
        seed: options.seed,
    };
    let started = Instant::now();
    let series = figure7(0.2, &sweep_options);
    let sweep_wall = started.elapsed();
    let sweep_jobs = series.iter().map(|s| s.points.len()).sum::<usize>();

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut table = String::new();
    table.push_str("# Engine wall-clock benchmark (figure-7 topology)\n");
    table.push_str(&format!(
        "single run : {} events in {:.1} ms -> {:.0} events/sec (committed {})\n",
        run.artifacts.events_processed,
        run.wall_ms,
        events_per_sec,
        run.artifacts.metrics.committed,
    ));
    table.push_str(&format!(
        "fig7a sweep: {} runs in {:.1} ms on {} thread(s)\n",
        sweep_jobs,
        sweep_wall.as_secs_f64() * 1e3,
        threads,
    ));
    emit("sim_engine", table);
    emit(
        "sim_engine_series",
        render_table("Figure 7(a) series used for the sweep timing", &series),
    );

    let mut report = JsonReport::new();
    let mut engine_fields = vec![("quick", JsonValue::Bool(options.quick))];
    engine_fields.extend(run.rate_fields());
    engine_fields.extend([
        ("sweep_jobs", JsonValue::Num(sweep_jobs as f64)),
        (
            "sweep_wall_ms",
            JsonValue::Num(sweep_wall.as_secs_f64() * 1e3),
        ),
        ("threads", JsonValue::Num(threads as f64)),
        ("runtime", runtime_json(&run.artifacts)),
    ]);
    report.add_value("engine", JsonValue::object(engine_fields));
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());

    if let Some(floor_path) = floor_path_from_args(&args) {
        match read_floor(&floor_path) {
            Some(floor) => {
                let minimum = floor * FLOOR_TOLERANCE;
                if events_per_sec < minimum {
                    eprintln!(
                        "ENGINE REGRESSION: {events_per_sec:.0} events/sec is more than 30% \
                         below the floor of {floor:.0} (minimum {minimum:.0})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "engine floor ok: {events_per_sec:.0} events/sec >= {minimum:.0} \
                     (floor {floor:.0} - 30%)"
                );
            }
            None => {
                eprintln!("failed to read events_per_sec floor from {floor_path:?}");
                std::process::exit(1);
            }
        }
    }
}
