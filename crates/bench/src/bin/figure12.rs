//! Regenerates Figure 12: fault-tolerance scalability with crash-only domains
//! of 5 (f = 2) and 9 (f = 4) replicas, single region, 90/10 workload.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure_ft, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (faults, label, tag) in [
        (2, "(a) |p| = 5", "figure12a_f2"),
        (4, "(b) |p| = 9", "figure12b_f4"),
    ] {
        let series = figure_ft(FailureModel::Crash, faults, &options);
        emit(
            "figure12",
            render_table(
                &format!("Figure 12{label} crash-only fault-tolerance scalability"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
