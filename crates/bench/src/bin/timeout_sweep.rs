//! Liveness-timeout sweep: `LivenessConfig::progress_timeout` against the
//! three placements' RTTs.
//!
//! Each `(placement, timeout)` cell runs twice: failure-free with progress
//! timers armed — every observed view change is a *false suspicion* — and
//! with a scripted leader crash, where the same timeout determines how fast
//! the domain elects a replacement (recovery time = crash instant to the
//! first commit of a post-crash submission).  Small windows churn through
//! needless view changes on wide-area RTTs; large windows leave the domain
//! leaderless for longer after a real crash.
//!
//! `--json <path>` merges a `timeout_sweep` section into the shared
//! `BENCH_results.json`.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{render_timeout_table, timeout_sweep};
use saguaro_sim::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let series = timeout_sweep(&options);
    emit(
        "timeout_sweep",
        render_timeout_table(
            "Liveness-timeout sweep: false suspicions vs recovery time",
            &series,
        ),
    );
    for s in &series {
        for p in &s.points {
            assert!(
                p.recovery_ms >= 0.0,
                "{} @ {} ms: the crashed domain never recovered",
                s.label,
                p.timeout_ms
            );
        }
    }
    let mut report = JsonReport::new();
    report.add_value("timeout_sweep", series.to_json());
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());
}
