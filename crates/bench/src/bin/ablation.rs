//! Ablation studies listed in DESIGN.md: LCA vs fixed-root coordinator and
//! the effect of contention on the optimistic protocol.  (The batching
//! ablation has its own binary, `ablation_batch`.)

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{ablation_contention, ablation_lca_vs_root, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    let lca = ablation_lca_vs_root(&options);
    emit(
        "ablation-lca",
        render_table(
            "Ablation: LCA coordinator vs fixed root coordinator (100% cross-domain)",
            &lca,
        ),
    );
    report.add_series("ablation_lca_vs_root", &lca);
    let contention = ablation_contention(&options);
    emit(
        "ablation-contention",
        render_table(
            "Ablation: contention sensitivity of the optimistic protocol (80% cross-domain)",
            &contention,
        ),
    );
    report.add_series("ablation_contention", &contention);
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
