//! Ablation studies listed in DESIGN.md: LCA vs fixed-root coordinator and
//! the effect of contention on the optimistic protocol.

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{ablation_contention, ablation_lca_vs_root, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    emit(
        "ablation-lca",
        render_table(
            "Ablation: LCA coordinator vs fixed root coordinator (100% cross-domain)",
            &ablation_lca_vs_root(&options),
        ),
    );
    emit(
        "ablation-contention",
        render_table(
            "Ablation: contention sensitivity of the optimistic protocol (80% cross-domain)",
            &ablation_contention(&options),
        ),
    );
}
