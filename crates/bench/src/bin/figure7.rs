//! Regenerates Figure 7: cross-domain transactions over crash-only domains in
//! nearby regions — 20 %, 80 % and 100 % cross-domain sub-figures, six curves
//! each (AHL, SharPer, Coordinator, Opt-10/50/90 %C).
//!
//! `--trace <path>` additionally replays the 20 % coordinator point with
//! structured tracing on and writes the run's Chrome trace-event export to
//! `<path>` (load it at <https://ui.perfetto.dev>); with `--json` the traced
//! run's bucketed `timeline` section is included in the report.

use saguaro_bench::{
    emit, json_path_from_args, options_from_args, trace_path_from_args, JsonReport,
};
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::figures::{figure7, render_table};
use saguaro_sim::json::ToJson;
use saguaro_sim::protocol::ProtocolKind;
use saguaro_types::TraceConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (pct, label, tag) in [
        (0.2, "(a) 20%", "figure7a_20pct"),
        (0.8, "(b) 80%", "figure7b_80pct"),
        (1.0, "(c) 100%", "figure7c_100pct"),
    ] {
        let series = figure7(pct, &options);
        emit(
            "figure7",
            render_table(
                &format!("Figure 7{label} cross-domain, crash-only, nearby regions"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }

    if let Some(trace_path) = trace_path_from_args(&args) {
        // One traced replay of the sub-figure (a) coordinator point.  The
        // sweep above stays untraced, so its numbers are unaffected.
        let mut spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
            .cross_domain(0.2)
            .trace(TraceConfig::on());
        spec.seed = options.seed;
        if options.quick {
            spec = spec.quick().load(1_200.0);
        }
        let artifacts = spec.run_collecting();
        if let Some(trace) = &artifacts.trace {
            match std::fs::write(&trace_path, trace.chrome_json()) {
                Ok(()) => eprintln!(
                    "wrote {} trace events ({} dropped) to {}",
                    trace.len(),
                    trace.dropped,
                    trace_path.display()
                ),
                Err(e) => eprintln!("failed to write {}: {e}", trace_path.display()),
            }
        }
        if let Some(timeline) = &artifacts.timeline {
            report.add_value("timeline", timeline.to_json());
        }
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
