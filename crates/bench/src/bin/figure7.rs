//! Regenerates Figure 7: cross-domain transactions over crash-only domains in
//! nearby regions — 20 %, 80 % and 100 % cross-domain sub-figures, six curves
//! each (AHL, SharPer, Coordinator, Opt-10/50/90 %C).

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure7, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (pct, label) in [(0.2, "(a) 20%"), (0.8, "(b) 80%"), (1.0, "(c) 100%")] {
        let series = figure7(pct, &options);
        emit(
            "figure7",
            render_table(
                &format!("Figure 7{label} cross-domain, crash-only, nearby regions"),
                &series,
            ),
        );
    }
}
