//! Regenerates Figure 7: cross-domain transactions over crash-only domains in
//! nearby regions — 20 %, 80 % and 100 % cross-domain sub-figures, six curves
//! each (AHL, SharPer, Coordinator, Opt-10/50/90 %C).

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure7, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (pct, label, tag) in [
        (0.2, "(a) 20%", "figure7a_20pct"),
        (0.8, "(b) 80%", "figure7b_80pct"),
        (1.0, "(c) 100%", "figure7c_100pct"),
    ] {
        let series = figure7(pct, &options);
        emit(
            "figure7",
            render_table(
                &format!("Figure 7{label} cross-domain, crash-only, nearby regions"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
