//! Recovery figure: how long a crashed-and-recovered replica takes to catch
//! up via state transfer, as a function of the outage length.
//!
//! A backup replica of one height-1 domain crashes and recovers after an
//! increasing outage while the domain keeps committing under its primary.
//! With checkpointing active the victim's log gap cannot be filled by
//! re-accepts (the slots are garbage-collected domain-wide), so the measured
//! recovery time is the `StateRequest` / `StateReply` catch-up.  The table
//! also records the view-change vote-size bound the checkpoint buys
//! (bounded vs unbounded bytes).
//!
//! `--json <path>` merges a `recovery` section into the shared
//! `BENCH_results.json` (other sections are preserved).

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{recovery, render_recovery_table};
use saguaro_sim::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let series = recovery(&options);
    emit(
        "recovery",
        render_recovery_table(
            "Recovery: state-transfer catch-up time vs outage length",
            &series,
        ),
    );
    for s in &series {
        for p in &s.points {
            assert!(
                p.recovery_ms >= 0.0,
                "{}: victim never caught up after a {} ms outage",
                s.label,
                p.outage_ms
            );
            assert!(
                p.transferred_commands > 0,
                "{}: no state was transferred for a {} ms outage",
                s.label,
                p.outage_ms
            );
            assert_eq!(
                p.victim_frontier, p.healthy_frontier,
                "{}: victim frontier lags its healthy peer after recovery",
                s.label
            );
            assert!(
                (p.vote_entries as u64) < p.vote_entries_unbounded,
                "{}: view-change votes are not bounded by the checkpoint",
                s.label
            );
        }
        // The transferred volume scales with the outage: the longest outage
        // must move at least as much state as the shortest.
        let first = s.points.first().expect("at least one outage");
        let last = s.points.last().expect("at least one outage");
        assert!(
            last.transferred_commands >= first.transferred_commands,
            "{}: transfer volume did not grow with outage length",
            s.label
        );
    }
    let mut report = JsonReport::new();
    report.add_value("recovery", series.to_json());
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());
}
