//! Population-scale load generation benchmark.
//!
//! Sweeps aggregate client populations of 10³ → 10⁵ modeled users (10⁶ in
//! full mode) over progressively wider topologies — up to 128 height-1
//! domains — and reports throughput, streaming-histogram latency quantiles,
//! engine cost (events per committed transaction, event-queue high-water
//! mark) and host-side cost (wall clock, resident set) per point.
//!
//! Two gates make the run self-checking so CI fails loudly instead of
//! silently shipping a regression:
//!
//! 1. **Scale gate** — the 10⁵-user, 100+-domain point must commit work,
//!    keep the client-side in-flight high-water mark O(1) in the
//!    transaction count, and finish under a wall-clock / resident-set
//!    ceiling.
//! 2. **Parity gate** — the exact per-actor latencies of a common-topology
//!    run are replayed into a streaming histogram; every reported quantile
//!    must agree with the exact nearest-rank value within the histogram's
//!    documented relative-error bound.
//!
//! `--json <path>` merges a `population` section into the shared
//! `BENCH_results.json` (other sections are preserved).

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_loadgen::LatencyHistogram;
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::figures::{population, render_population_table, FigureOptions, PopulationPoint};
use saguaro_sim::json::{JsonValue, ToJson};
use saguaro_sim::protocol::ProtocolKind;
use saguaro_types::SimTime;

/// Wall-clock ceiling for the 10⁵-user quick point (generous: CI runners
/// are slow and shared, and the point takes well under a second locally).
const QUICK_WALL_CEILING_MS: f64 = 60_000.0;

/// Resident-set ceiling after the 10⁵-user quick point, in KiB (2 GiB).
/// The aggregate model keeps no per-transaction state, so blowing through
/// this means a completions buffer crept back in somewhere.
const QUICK_RSS_CEILING_KB: u64 = 2 * 1024 * 1024;

/// The scale gate: the 10⁵-user point exists, committed work, kept
/// client-side memory O(1) in the transaction count, and stayed under the
/// wall-clock / resident-set ceilings.  Returns an error string per
/// violated condition.
fn scale_gate(points: &[PopulationPoint], quick: bool) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(p) = points.iter().find(|p| p.users == 100_000) else {
        return vec!["no 10^5-user point in the sweep".to_string()];
    };
    if p.domains < 100 {
        errors.push(format!(
            "10^5-user point ran on {} domains, need >= 100",
            p.domains
        ));
    }
    if p.metrics.committed == 0 {
        errors.push("10^5-user point committed nothing".to_string());
    }
    // O(1) client-side memory: the in-flight map's high-water mark tracks
    // concurrency (offered rate x latency), not history.  A per-transaction
    // buffer would scale with `committed` instead.
    let inflight_ceiling = p.metrics.committed / 4 + 256;
    if p.peak_inflight > inflight_ceiling {
        errors.push(format!(
            "peak in-flight {} exceeds {} (committed {}): client-side state \
             is scaling with transaction count",
            p.peak_inflight, inflight_ceiling, p.metrics.committed
        ));
    }
    if quick {
        if p.wall_ms > QUICK_WALL_CEILING_MS {
            errors.push(format!(
                "10^5-user quick point took {:.0} ms (ceiling {:.0} ms)",
                p.wall_ms, QUICK_WALL_CEILING_MS
            ));
        }
        if p.resident_kb > QUICK_RSS_CEILING_KB {
            errors.push(format!(
                "resident set {} KiB exceeds ceiling {} KiB",
                p.resident_kb, QUICK_RSS_CEILING_KB
            ));
        }
    }
    errors
}

/// The parity gate: replay the exact per-actor latencies of a common
/// topology into the streaming histogram and compare quantiles.  Returns
/// the `(p, exact_ms, approx_ms)` rows and any violations.
fn parity_gate(seed: u64) -> (Vec<(f64, f64, f64)>, Vec<String>) {
    let mut spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
        .quick()
        .cross_domain(0.3)
        .load(600.0);
    spec.seed = seed;
    let artifacts = spec.run_collecting();
    let exact = artifacts.metrics;
    let window_start = SimTime::ZERO + spec.warmup;
    let window_end = window_start + spec.measure;
    let mut hist = LatencyHistogram::new();
    for c in &artifacts.completions {
        if c.committed && c.submitted_at >= window_start && c.submitted_at < window_end {
            hist.record(c.latency.as_micros());
        }
    }
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for (p, exact_ms) in [
        (0.50, exact.p50_latency_ms),
        (0.95, exact.p95_latency_ms),
        (0.99, exact.p99_latency_ms),
    ] {
        let approx_ms = hist.quantile(p) as f64 / 1_000.0;
        rows.push((p, exact_ms, approx_ms));
        let tolerance = exact_ms * LatencyHistogram::RELATIVE_ERROR_BOUND + 1e-3;
        if (approx_ms - exact_ms).abs() > tolerance {
            errors.push(format!(
                "p{p}: histogram {approx_ms} ms vs exact {exact_ms} ms \
                 (tolerance {tolerance} ms)"
            ));
        }
    }
    (rows, errors)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options: FigureOptions = options_from_args(&args);

    let points = population(&options);
    emit(
        "population",
        render_population_table("Population-scale load generation sweep", &points),
    );

    let (parity_rows, parity_errors) = parity_gate(options.seed);
    let mut parity_table = String::new();
    parity_table.push_str("# Histogram-vs-exact quantile parity (common topology)\n");
    parity_table.push_str(&format!(
        "{:>6} {:>10} {:>14}\n",
        "p", "exact_ms", "histogram_ms"
    ));
    for (p, exact_ms, approx_ms) in &parity_rows {
        parity_table.push_str(&format!("{p:>6.2} {exact_ms:>10.3} {approx_ms:>14.3}\n"));
    }
    emit("population_parity", parity_table);

    let mut report = JsonReport::new();
    report.add_value(
        "population",
        JsonValue::object([
            ("quick", JsonValue::Bool(options.quick)),
            ("points", points.to_json()),
            (
                "parity",
                JsonValue::Array(
                    parity_rows
                        .iter()
                        .map(|(p, exact_ms, approx_ms)| {
                            JsonValue::object([
                                ("p", JsonValue::Num(*p)),
                                ("exact_ms", JsonValue::Num(*exact_ms)),
                                ("histogram_ms", JsonValue::Num(*approx_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());

    let mut errors = scale_gate(&points, options.quick);
    errors.extend(parity_errors);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("POPULATION REGRESSION: {e}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "population gates ok: 10^5-user point within ceilings, quantile \
         parity within {:.1}% of exact",
        LatencyHistogram::RELATIVE_ERROR_BOUND * 100.0
    );
}
