//! Batching ablation: consensus block size vs committed throughput at
//! saturation, on the figure-7 topology, for all four protocol stacks.
//!
//! ```text
//! cargo run --release -p saguaro-bench --bin ablation_batch -- \
//!     [--quick] [--seed N] [--json BENCH_results.json]
//! ```
//!
//! Prints one table with a `<stack> b=<max_batch>` series per configuration
//! plus a summary of the batched-vs-unbatched throughput delta per stack;
//! with `--json` the series and the deltas are also written as a
//! machine-readable trajectory.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{ablation_batch, batch_throughput_delta, render_table};
use saguaro_sim::json::JsonValue;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let json_path = json_path_from_args(&args);

    let series = ablation_batch(&options);
    emit(
        "ablation-batch",
        render_table(
            "Ablation: consensus block size (request batching) at saturation, \
             figure-7 topology",
            &series,
        ),
    );

    let deltas = batch_throughput_delta(&series);
    println!("# Batched vs unbatched committed throughput (highest load)");
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "stack", "b=1 tps", "batched tps", "delta"
    );
    for (stack, unbatched, batched, pct) in &deltas {
        println!("{stack:<22} {unbatched:>14.0} {batched:>14.0} {pct:>+9.1}%");
    }

    let mut report = JsonReport::new();
    report.add_series("ablation_batch", &series);
    report.add_value(
        "batch_throughput_delta",
        JsonValue::Array(
            deltas
                .iter()
                .map(|(stack, unbatched, batched, pct)| {
                    JsonValue::object([
                        ("stack", JsonValue::Str(stack.clone())),
                        ("unbatched_tps", JsonValue::Num(*unbatched)),
                        ("batched_tps", JsonValue::Num(*batched)),
                        ("delta_pct", JsonValue::Num(*pct)),
                    ])
                })
                .collect(),
        ),
    );
    report.write_if_requested(json_path.as_ref());
}
