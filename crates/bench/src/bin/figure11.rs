//! Regenerates Figure 11: performance with mobile devices over the wide-area
//! placement.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure11, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (model, label, tag) in [
        (FailureModel::Crash, "(a) crash-only", "figure11a_crash"),
        (
            FailureModel::Byzantine,
            "(b) Byzantine",
            "figure11b_byzantine",
        ),
    ] {
        let series = figure11(model, &options);
        emit(
            "figure11",
            render_table(
                &format!("Figure 11{label} mobile devices, wide area"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
