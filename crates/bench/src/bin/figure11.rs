//! Regenerates Figure 11: performance with mobile devices over the wide-area
//! placement.

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure11, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (model, label) in [
        (FailureModel::Crash, "(a) crash-only"),
        (FailureModel::Byzantine, "(b) Byzantine"),
    ] {
        let series = figure11(model, &options);
        emit(
            "figure11",
            render_table(
                &format!("Figure 11{label} mobile devices, wide area"),
                &series,
            ),
        );
    }
}
