//! Parallel-engine speedup benchmark: how much faster does the
//! conservative-parallel engine run a *single* simulation than the
//! sequential engine?
//!
//! Two topologies, both under the coordinator stack with 20 % cross-domain
//! micropayments:
//!
//! 1. **figure-7 tree** — the paper's 4-edge-domain binary topology
//!    (5 partitions: 4 edge domains + the hub), per-actor clients.
//! 2. **wide flat tree** — 128 edge domains under one root (129
//!    partitions), aggregate-population clients.  This is where domain
//!    parallelism actually pays: the event population spreads across many
//!    independent shards.
//!
//! For each topology the binary times the sequential engine and the
//! parallel engine at 1, 2 and 4 workers (warm-up run first; the workloads
//! are deterministic per engine, so the timed runs repeat identical event
//! histories).  Speedup is the events/sec ratio against the sequential
//! baseline — the engines process slightly different event totals (their
//! RNG streams differ by design), so wall-clock alone would mislead.
//!
//! `--json <path>` merges a `pdes` section into the shared
//! `BENCH_results.json`.  `--min-speedup <x>` exits non-zero if the wide
//! topology's best parallel rate fell below `x ×` sequential — but only
//! when the host actually has ≥ 4 cores, so single-core containers can
//! still run the measurement without flaking.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::json::JsonValue;
use saguaro_sim::protocol::ProtocolKind;
use saguaro_types::PopulationConfig;

/// Worker-thread counts swept per topology (sequential baseline aside).
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Cores the host must expose before the `--min-speedup` gate is enforced.
const GATE_MIN_CORES: usize = 4;

fn min_speedup_from_args(args: &[String]) -> Option<f64> {
    args.iter()
        .position(|a| a == "--min-speedup")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// One timed configuration: the shared warmed-up measurement plus this
/// binary's sweep bookkeeping (label, worker count).
struct Timed {
    label: String,
    workers: Option<usize>,
    run: saguaro_bench::TimedRun,
}

fn timed(label: &str, workers: Option<usize>, spec: &ExperimentSpec) -> Timed {
    Timed {
        label: label.to_string(),
        workers,
        run: saguaro_bench::timed_run(spec),
    }
}

/// Times the sequential baseline plus every swept worker count on one
/// topology; returns the rows in measurement order (sequential first).
fn sweep_topology(base: &ExperimentSpec) -> Vec<Timed> {
    let mut rows = vec![timed("sequential", None, base)];
    for workers in WORKER_COUNTS {
        rows.push(timed(
            &format!("parallel x{workers}"),
            Some(workers),
            &base.clone().parallel(workers),
        ));
    }
    rows
}

fn render_rows(title: &str, rows: &[Timed]) -> String {
    let baseline = rows[0].run.events_per_sec();
    let mut table = format!("# {title}\n");
    for row in rows {
        table.push_str(&format!(
            "{:<12} {:>9} events in {:>8.1} ms -> {:>9.0} events/sec  ({:.2}x, committed {})\n",
            row.label,
            row.run.artifacts.events_processed,
            row.run.wall_ms,
            row.run.events_per_sec(),
            row.run.events_per_sec() / baseline.max(1e-9),
            row.run.artifacts.metrics.committed,
        ));
    }
    table
}

fn rows_to_json(rows: &[Timed]) -> JsonValue {
    let baseline = rows[0].run.events_per_sec();
    JsonValue::Array(
        rows.iter()
            .map(|row| {
                let (windows, cross_messages) = row
                    .run
                    .artifacts
                    .pdes
                    .as_ref()
                    .map(|p| (p.windows, p.cross_messages))
                    .unwrap_or((0, 0));
                let mut fields = vec![
                    ("label", JsonValue::Str(row.label.clone())),
                    ("workers", JsonValue::Num(row.workers.unwrap_or(0) as f64)),
                ];
                fields.extend(row.run.rate_fields());
                fields.extend([
                    (
                        "speedup",
                        JsonValue::Num(row.run.events_per_sec() / baseline.max(1e-9)),
                    ),
                    ("windows", JsonValue::Num(windows as f64)),
                    ("cross_messages", JsonValue::Num(cross_messages as f64)),
                ]);
                JsonValue::object(fields)
            })
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // 1. The paper's figure-7 tree: 4 edge domains + hub (5 partitions).
    let mut fig7 = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator).cross_domain(0.2);
    fig7.seed = options.seed;
    if options.quick {
        fig7 = fig7.quick().load(1_200.0);
    }
    let fig7_rows = sweep_topology(&fig7);

    // 2. The 128-domain flat tree (129 partitions) under an aggregate
    //    client population — the wide-topology case the parallel engine is
    //    built for.  The population scales load with the domain count so
    //    each shard has real work.
    let (users, per_user) = if options.quick {
        (120_000, 0.05)
    } else {
        (400_000, 0.05)
    };
    let population = PopulationConfig::with_users(users)
        .per_user(per_user)
        .sampled_every(16);
    let mut wide = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
        .shaped(2, 128)
        .cross_domain(0.2)
        .aggregate(population);
    wide.seed = options.seed;
    if options.quick {
        wide = wide.quick();
    }
    let wide_rows = sweep_topology(&wide);

    emit(
        "pdes_fig7",
        render_rows(
            "Parallel-engine speedup, figure-7 tree (5 partitions)",
            &fig7_rows,
        ),
    );
    emit(
        "pdes_wide",
        render_rows(
            &format!(
                "Parallel-engine speedup, 128-domain flat tree (129 partitions, {threads} core(s))"
            ),
            &wide_rows,
        ),
    );

    let best_wide = wide_rows[1..]
        .iter()
        .max_by(|a, b| a.run.events_per_sec().total_cmp(&b.run.events_per_sec()))
        .expect("worker sweep is non-empty");
    let wide_speedup = best_wide.run.events_per_sec() / wide_rows[0].run.events_per_sec().max(1e-9);

    let mut report = JsonReport::new();
    report.add_value(
        "pdes",
        JsonValue::object([
            ("quick", JsonValue::Bool(options.quick)),
            ("threads", JsonValue::Num(threads as f64)),
            ("figure7", rows_to_json(&fig7_rows)),
            ("wide_128", rows_to_json(&wide_rows)),
            ("wide_best_speedup", JsonValue::Num(wide_speedup)),
        ]),
    );
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());

    if let Some(min_speedup) = min_speedup_from_args(&args) {
        if threads < GATE_MIN_CORES {
            eprintln!(
                "pdes speedup gate skipped: host has {threads} core(s), \
                 gate needs {GATE_MIN_CORES}"
            );
        } else if wide_speedup < min_speedup {
            eprintln!(
                "PDES REGRESSION: best wide-topology speedup {wide_speedup:.2}x \
                 is below the {min_speedup:.2}x floor ({} on {threads} cores)",
                best_wide.label
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "pdes speedup ok: {wide_speedup:.2}x >= {min_speedup:.2}x \
                 ({} on {threads} cores)",
                best_wide.label
            );
        }
    }
}
