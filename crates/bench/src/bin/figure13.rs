//! Regenerates Figure 13: fault-tolerance scalability with Byzantine domains
//! of 7 (f = 2) and 13 (f = 4) replicas, single region, 90/10 workload.

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure_ft, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (faults, label) in [(2, "(a) |p| = 7"), (4, "(b) |p| = 13")] {
        let series = figure_ft(FailureModel::Byzantine, faults, &options);
        emit(
            "figure13",
            render_table(
                &format!("Figure 13{label} Byzantine fault-tolerance scalability"),
                &series,
            ),
        );
    }
}
