//! Regenerates Figure 13: fault-tolerance scalability with Byzantine domains
//! of 7 (f = 2) and 13 (f = 4) replicas, single region, 90/10 workload.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure_ft, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (faults, label, tag) in [
        (2, "(a) |p| = 7", "figure13a_f2"),
        (4, "(b) |p| = 13", "figure13b_f4"),
    ] {
        let series = figure_ft(FailureModel::Byzantine, faults, &options);
        emit(
            "figure13",
            render_table(
                &format!("Figure 13{label} Byzantine fault-tolerance scalability"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
