//! Fault-injection sweep: every protocol stack runs the same scripted
//! crash-and-recover schedule on the figure-7 topology — the view-0 primary
//! of one height-1 domain crashes a quarter into the measurement window and
//! recovers at 70 % of it — and the binary prints the committed-throughput
//! timeline around the outage.  Paxos view changes are exercised by the four
//! crash-model stacks, PBFT by the extra `Coordinator-BFT` series.
//!
//! `--json <path>` merges a `faults` section into the shared
//! `BENCH_results.json` (other sections are preserved).

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{faults, render_fault_table};
use saguaro_sim::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let series = faults(&options);
    emit(
        "faults",
        render_fault_table(
            "Fault injection: leader crash + recovery, figure-7 topology",
            &series,
        ),
    );
    for s in &series {
        assert!(
            s.view_changes > 0,
            "{}: a scripted leader crash must drive at least one view change",
            s.label
        );
    }
    let mut report = JsonReport::new();
    report.add_value("faults", series.to_json());
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());
}
