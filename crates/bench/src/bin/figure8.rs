//! Regenerates Figure 8: cross-domain transactions over Byzantine domains in
//! nearby regions.

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure8, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (pct, label) in [(0.2, "(a) 20%"), (0.8, "(b) 80%"), (1.0, "(c) 100%")] {
        let series = figure8(pct, &options);
        emit(
            "figure8",
            render_table(
                &format!("Figure 8{label} cross-domain, Byzantine, nearby regions"),
                &series,
            ),
        );
    }
}
