//! Regenerates Figure 8: cross-domain transactions over Byzantine domains in
//! nearby regions.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure8, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (pct, label, tag) in [
        (0.2, "(a) 20%", "figure8a_20pct"),
        (0.8, "(b) 80%", "figure8b_80pct"),
        (1.0, "(c) 100%", "figure8c_100pct"),
    ] {
        let series = figure8(pct, &options);
        emit(
            "figure8",
            render_table(
                &format!("Figure 8{label} cross-domain, Byzantine, nearby regions"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
