//! Production-shaped adversarial scenario matrix with adaptive suspicion
//! timeouts.
//!
//! Runs every composite scenario (whole-domain outage, correlated
//! multi-domain outage, scoped WAN delay spike, primary crash with an
//! equivocating view-change co-conspirator, flash crowd during an outage)
//! against all four stacks under both timeout policies, asserting **zero
//! safety violations** in every cell.  Then replays the `timeout_sweep`
//! crashed-primary scenario to check that the adaptive policy recovers
//! within 2× the best fixed window while firing no more false suspicions
//! than it.
//!
//! `--json <path>` merges a `scenarios` section into the shared
//! `BENCH_results.json`.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::json::{JsonValue, ToJson};
use saguaro_sim::scenarios::{
    adaptive_comparison, render_adaptive_table, render_scenario_table, scenario_matrix,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);

    let cells = scenario_matrix(&options);
    emit(
        "scenarios",
        render_scenario_table("Adversarial scenario matrix", &cells),
    );
    for c in &cells {
        assert!(
            c.safety_violations.is_empty(),
            "{} / {} / {}: safety violated: {:?}",
            c.scenario,
            c.stack,
            c.policy,
            c.safety_violations
        );
    }

    let cmp = adaptive_comparison(&options);
    emit(
        "scenarios",
        render_adaptive_table(
            "Adaptive vs fixed suspicion windows (crashed primary)",
            &cmp,
        ),
    );
    assert!(
        cmp.adaptive_within(2.0),
        "adaptive policy out of bounds: recovered in {:.1} ms with {} false suspicions \
         vs best fixed {} ({:.1} ms, {} false suspicions)",
        cmp.adaptive.recovery_ms,
        cmp.adaptive.false_suspicions,
        cmp.best_fixed.label,
        cmp.best_fixed.recovery_ms,
        cmp.best_fixed.false_suspicions
    );

    let mut report = JsonReport::new();
    report.add_value(
        "scenarios",
        JsonValue::object([
            ("matrix", cells.to_json()),
            ("adaptive_comparison", cmp.to_json()),
        ]),
    );
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());
}
