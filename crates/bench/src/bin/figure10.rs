//! Regenerates Figure 10: scalability over wide-area domains (seven far-apart
//! regions, 90 % internal / 10 % cross-domain).

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure10, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (model, label, tag) in [
        (FailureModel::Crash, "(a) crash-only", "figure10a_crash"),
        (
            FailureModel::Byzantine,
            "(b) Byzantine",
            "figure10b_byzantine",
        ),
    ] {
        let series = figure10(model, &options);
        emit(
            "figure10",
            render_table(
                &format!("Figure 10{label} wide area, 10% cross-domain"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
