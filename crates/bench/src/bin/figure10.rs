//! Regenerates Figure 10: scalability over wide-area domains (seven far-apart
//! regions, 90 % internal / 10 % cross-domain).

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure10, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (model, label) in [
        (FailureModel::Crash, "(a) crash-only"),
        (FailureModel::Byzantine, "(b) Byzantine"),
    ] {
        let series = figure10(model, &options);
        emit(
            "figure10",
            render_table(
                &format!("Figure 10{label} wide area, 10% cross-domain"),
                &series,
            ),
        );
    }
}
