//! Endurance figure: snapshot catch-up and log pruning over a long run
//! with a mid-run replica outage.
//!
//! Three aggregate-population runs drive one Saguaro deployment with a
//! finite checkpoint-retention window:
//!
//! 1. **half** — half-length, failure-free: the memory-footprint baseline.
//! 2. **short-outage** — full-length with a brief mid-run backup crash.
//! 3. **long-outage** — full-length with an outage several times longer
//!    (the headline run: ≥ 10⁶ committed transactions in full mode).
//!
//! Four gates make the run self-checking so CI fails loudly instead of
//! silently shipping a regression:
//!
//! * **Flat RSS** — doubling the committed-transaction count (half → full
//!   length) and stretching the outage must not grow the resident set
//!   beyond a fixed ceiling: with pruning on, every per-replica structure
//!   is bounded by the retention window, not by run length.
//! * **Bounded chains** — no replica may retain more consensus-log entries
//!   than the retention window plus checkpoint slack.
//! * **Snapshot catch-up** — the recovered victim must have installed a
//!   snapshot, and its catch-up time must be flat in the outage length
//!   (a replay-based catch-up scales with the outage instead).
//! * **Volume** — the long-outage run must commit the target transaction
//!   count (10⁶ full, scaled down under `--quick`).
//!
//! `--json <path>` merges an `endurance` section into the shared
//! `BENCH_results.json` (other sections are preserved).

use saguaro_bench::{emit, json_path_from_args, options_from_args, timed_run_cold, JsonReport};
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::figures::resident_kb;
use saguaro_sim::json::JsonValue;
use saguaro_sim::protocol::ProtocolKind;
use saguaro_sim::FaultSchedule;
use saguaro_types::{DomainId, Duration, NodeId, PopulationConfig, SimTime};

/// Consensus block size: amortises per-message cost so the full-mode run
/// reaches 10⁶ commits in reasonable wall time.
const BATCH: usize = 32;
/// Checkpoint announcement interval (sequence numbers).
const INTERVAL: u64 = 16;
/// Retention window (sequence numbers kept below the stable checkpoint).
/// Deliberately much shorter than either outage, so the recovered victim's
/// frontier is below every responder's retained tail and catch-up MUST go
/// through the snapshot path rather than full command replay.
const RETENTION: u64 = 64;
/// Height-1 domains of the shaped topology.
const FANOUT: usize = 8;

/// Upper bound on retained consensus-log entries per replica: the retention
/// window plus a few checkpoint intervals of not-yet-pruned slack.
const CHAIN_CEILING: u64 = RETENTION + 4 * INTERVAL + 256;

/// Resident-set growth ceiling between runs, in KiB (256 MiB).  Pruned
/// state is bounded by the retention window, so doubling the committed
/// count or stretching the outage must not move RSS by more than
/// allocator noise.
const RSS_GROWTH_CEILING_KB: u64 = 256 * 1024;

/// Absolute resident-set ceiling after the long-outage run, in KiB (3 GiB).
const RSS_ABS_CEILING_KB: u64 = 3 * 1024 * 1024;

/// Catch-up flatness: the long outage may cost at most this factor over the
/// short one (plus a small absolute slack for timer quantisation).
const CATCH_UP_FACTOR: f64 = 3.0;
const CATCH_UP_SLACK_MS: f64 = 100.0;

/// Shape of one endurance scenario.
struct Scenario {
    users: u64,
    warmup: Duration,
    measure: Duration,
    outage_short: Duration,
    outage_long: Duration,
    committed_target: u64,
}

impl Scenario {
    fn for_mode(quick: bool) -> Self {
        if quick {
            Self {
                users: 20_000,
                warmup: Duration::from_millis(200),
                measure: Duration::from_millis(2_400),
                outage_short: Duration::from_millis(600),
                outage_long: Duration::from_millis(1_500),
                committed_target: 30_000,
            }
        } else {
            Self {
                users: 250_000,
                warmup: Duration::from_millis(300),
                measure: Duration::from_millis(5_500),
                outage_short: Duration::from_millis(500),
                outage_long: Duration::from_millis(2_500),
                committed_target: 1_000_000,
            }
        }
    }
}

/// The backup replica crashed mid-run (domain 0 at height 1, replica 1 —
/// never the view-0 primary, so no view change is needed to keep
/// committing while it is down).
fn victim() -> NodeId {
    NodeId::new(DomainId::new(1, 0), 1)
}

/// Measured outcome of one endurance run.
struct RunOutcome {
    label: &'static str,
    outage_ms: f64,
    committed: u64,
    throughput_tps: f64,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    rss_kb: u64,
    catch_up_ms: Option<f64>,
    max_chain_len: u64,
    snapshots_taken: u64,
    victim_installs: u64,
    peak_events: u64,
}

/// Builds the endurance spec: aggregate population, finite retention,
/// wide two-level topology, batched consensus.
fn endurance_spec(scenario: &Scenario, seed: u64) -> ExperimentSpec {
    let population = PopulationConfig::with_users(scenario.users).per_user(1.0);
    let mut spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
        .shaped(2, FANOUT)
        .aggregate(population)
        .tune(|t| {
            t.batch_size(BATCH)
                .checkpoint_every(INTERVAL)
                .retained(RETENTION)
        });
    spec.seed = seed;
    spec.warmup = scenario.warmup;
    spec.measure = scenario.measure;
    spec
}

/// Runs one endurance point; `outage = None` is the failure-free baseline.
fn run_point(
    label: &'static str,
    scenario: &Scenario,
    seed: u64,
    measure: Duration,
    outage: Option<Duration>,
) -> RunOutcome {
    let mut spec = endurance_spec(scenario, seed);
    spec.measure = measure;
    let mut recover_at = None;
    if let Some(outage) = outage {
        let crash_at = spec.warmup + Duration::from_micros(measure.as_micros() / 4);
        let back_at = crash_at + outage;
        recover_at = Some(back_at);
        spec = spec.fault_plan(
            FaultSchedule::none()
                .crash_at(SimTime::ZERO + crash_at, victim())
                .recover_at(SimTime::ZERO + back_at, victim()),
        );
    }
    // No warm-up pass: these runs are minutes long in full mode, and the
    // engine rate is a secondary output here.
    let run = timed_run_cold(&spec);
    let (art, wall_ms) = (run.artifacts, run.wall_ms);
    let events_per_sec = art.events_processed as f64 / (wall_ms / 1e3).max(1e-9);

    let catch_up_ms = recover_at.and_then(|back_at| {
        let caught = art.harvest.node(victim())?.caught_up_at?;
        Some((caught - (SimTime::ZERO + back_at)).as_millis_f64())
    });
    RunOutcome {
        label,
        outage_ms: outage.map_or(0.0, |o| o.as_millis_f64()),
        committed: art.metrics.committed,
        throughput_tps: art.metrics.throughput_tps,
        events: art.events_processed,
        wall_ms,
        events_per_sec,
        rss_kb: resident_kb(),
        catch_up_ms,
        max_chain_len: art
            .harvest
            .nodes
            .iter()
            .map(|n| n.chain_len)
            .max()
            .unwrap_or(0),
        snapshots_taken: art.harvest.nodes.iter().map(|n| n.snapshots_taken).sum(),
        victim_installs: art
            .harvest
            .node(victim())
            .map_or(0, |n| n.snapshots_installed),
        peak_events: art.peak_pending_events,
    }
}

/// The endurance gates; returns one error string per violated condition.
fn gates(
    scenario: &Scenario,
    half: &RunOutcome,
    short: &RunOutcome,
    long: &RunOutcome,
) -> Vec<String> {
    let mut errors = Vec::new();
    if long.committed < scenario.committed_target {
        errors.push(format!(
            "long-outage run committed {} < target {}",
            long.committed, scenario.committed_target
        ));
    }
    for run in [half, short, long] {
        if run.snapshots_taken == 0 {
            errors.push(format!("{}: no replica materialised a snapshot", run.label));
        }
        if run.max_chain_len > CHAIN_CEILING {
            errors.push(format!(
                "{}: max retained chain {} exceeds ceiling {} — pruning is not \
                 holding the retention window",
                run.label, run.max_chain_len, CHAIN_CEILING
            ));
        }
    }
    for run in [short, long] {
        if run.victim_installs == 0 {
            errors.push(format!(
                "{}: recovered victim installed no snapshot (caught up by \
                 replay or not at all)",
                run.label
            ));
        }
    }
    match (short.catch_up_ms, long.catch_up_ms) {
        (Some(s), Some(l)) => {
            let ceiling = CATCH_UP_FACTOR * s + CATCH_UP_SLACK_MS;
            if l > ceiling {
                errors.push(format!(
                    "catch-up scales with outage: {l:.1} ms after the long outage \
                     vs {s:.1} ms after the short one (ceiling {ceiling:.1} ms)"
                ));
            }
        }
        _ => errors.push("victim never caught up after recovery".to_string()),
    }
    // Flat RSS: doubling the committed count (half -> short) and stretching
    // the outage (short -> long) must stay within allocator noise.
    let growth = |a: u64, b: u64| b.saturating_sub(a);
    if growth(half.rss_kb, short.rss_kb) > RSS_GROWTH_CEILING_KB {
        errors.push(format!(
            "RSS grew {} KiB when the run length doubled (ceiling {} KiB): \
             per-replica state is scaling with committed transactions",
            growth(half.rss_kb, short.rss_kb),
            RSS_GROWTH_CEILING_KB
        ));
    }
    if growth(short.rss_kb, long.rss_kb) > RSS_GROWTH_CEILING_KB {
        errors.push(format!(
            "RSS grew {} KiB when the outage stretched (ceiling {} KiB)",
            growth(short.rss_kb, long.rss_kb),
            RSS_GROWTH_CEILING_KB
        ));
    }
    if long.rss_kb > RSS_ABS_CEILING_KB {
        errors.push(format!(
            "resident set {} KiB exceeds absolute ceiling {} KiB",
            long.rss_kb, RSS_ABS_CEILING_KB
        ));
    }
    errors
}

fn render_table(runs: &[&RunOutcome]) -> String {
    let mut out = String::new();
    out.push_str("# Endurance: snapshot catch-up + log pruning (Saguaro coordinator)\n");
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>10} {:>9} {:>10} {:>9} {:>8} {:>9} {:>8} {:>11}\n",
        "run",
        "outage_ms",
        "committed",
        "tput_tps",
        "wall_ms",
        "rss_mb",
        "catchup",
        "chain",
        "snaps",
        "installs",
        "peak_events"
    ));
    for r in runs {
        out.push_str(&format!(
            "{:<14} {:>9.0} {:>10} {:>10.0} {:>9.0} {:>10.1} {:>9} {:>8} {:>9} {:>8} {:>11}\n",
            r.label,
            r.outage_ms,
            r.committed,
            r.throughput_tps,
            r.wall_ms,
            r.rss_kb as f64 / 1024.0,
            r.catch_up_ms.map_or("-".to_string(), |c| format!("{c:.1}")),
            r.max_chain_len,
            r.snapshots_taken,
            r.victim_installs,
            r.peak_events
        ));
    }
    out
}

fn outcome_json(r: &RunOutcome) -> JsonValue {
    JsonValue::object([
        ("label", JsonValue::Str(r.label.to_string())),
        ("outage_ms", JsonValue::Num(r.outage_ms)),
        ("committed", JsonValue::Num(r.committed as f64)),
        ("throughput_tps", JsonValue::Num(r.throughput_tps)),
        ("events_processed", JsonValue::Num(r.events as f64)),
        ("wall_ms", JsonValue::Num(r.wall_ms)),
        ("events_per_sec", JsonValue::Num(r.events_per_sec)),
        ("rss_kb", JsonValue::Num(r.rss_kb as f64)),
        (
            "catch_up_ms",
            r.catch_up_ms.map_or(JsonValue::Null, JsonValue::Num),
        ),
        ("max_chain_len", JsonValue::Num(r.max_chain_len as f64)),
        ("snapshots_taken", JsonValue::Num(r.snapshots_taken as f64)),
        (
            "victim_snapshot_installs",
            JsonValue::Num(r.victim_installs as f64),
        ),
        ("peak_pending_events", JsonValue::Num(r.peak_events as f64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let scenario = Scenario::for_mode(options.quick);

    let half_measure = Duration::from_micros(scenario.measure.as_micros() / 2);
    let half = run_point("half", &scenario, options.seed, half_measure, None);
    let short = run_point(
        "short-outage",
        &scenario,
        options.seed,
        scenario.measure,
        Some(scenario.outage_short),
    );
    let long = run_point(
        "long-outage",
        &scenario,
        options.seed,
        scenario.measure,
        Some(scenario.outage_long),
    );

    emit("endurance", render_table(&[&half, &short, &long]));

    let mut report = JsonReport::new();
    report.add_value(
        "endurance",
        JsonValue::object([
            ("quick", JsonValue::Bool(options.quick)),
            ("batch", JsonValue::Num(BATCH as f64)),
            ("checkpoint_interval", JsonValue::Num(INTERVAL as f64)),
            ("retention", JsonValue::Num(RETENTION as f64)),
            (
                "runs",
                JsonValue::Array(vec![
                    outcome_json(&half),
                    outcome_json(&short),
                    outcome_json(&long),
                ]),
            ),
        ]),
    );
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());

    let errors = gates(&scenario, &half, &short, &long);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("ENDURANCE REGRESSION: {e}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "endurance gates ok: {} committed, chains <= {}, catch-up flat \
         ({:.1} ms / {:.1} ms), RSS flat ({:.1} MiB)",
        long.committed,
        CHAIN_CEILING,
        short.catch_up_ms.unwrap_or(0.0),
        long.catch_up_ms.unwrap_or(0.0),
        long.rss_kb as f64 / 1024.0
    );
}
