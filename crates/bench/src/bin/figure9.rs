//! Regenerates Figure 9: performance with mobile devices (0/20/80/100 %
//! mobile clients) over nearby regions, crash-only and Byzantine domains.

use saguaro_bench::{emit, json_path_from_args, options_from_args, JsonReport};
use saguaro_sim::figures::{figure9, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    let mut report = JsonReport::new();
    for (model, label, tag) in [
        (FailureModel::Crash, "(a) crash-only", "figure9a_crash"),
        (
            FailureModel::Byzantine,
            "(b) Byzantine",
            "figure9b_byzantine",
        ),
    ] {
        let series = figure9(model, &options);
        emit(
            "figure9",
            render_table(
                &format!("Figure 9{label} mobile devices, nearby regions"),
                &series,
            ),
        );
        report.add_series(tag, &series);
    }
    report.write_if_requested(json_path_from_args(&args).as_ref());
}
