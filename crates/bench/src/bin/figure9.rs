//! Regenerates Figure 9: performance with mobile devices (0/20/80/100 %
//! mobile clients) over nearby regions, crash-only and Byzantine domains.

use saguaro_bench::{emit, options_from_args};
use saguaro_sim::figures::{figure9, render_table};
use saguaro_types::FailureModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);
    for (model, label) in [
        (FailureModel::Crash, "(a) crash-only"),
        (FailureModel::Byzantine, "(b) Byzantine"),
    ] {
        let series = figure9(model, &options);
        emit(
            "figure9",
            render_table(
                &format!("Figure 9{label} mobile devices, nearby regions"),
                &series,
            ),
        );
    }
}
