//! Tracing smoke benchmark: exercises the structured-tracing layer
//! end-to-end and gates its overhead.
//!
//! Two runs:
//!
//! 1. **Chaos run** — the view-change-storm scenario (crashed primary, an
//!    equivocating accomplice, recovery) on a byzantine coordinator
//!    deployment with batching, checkpointing and a finite retention
//!    window, traced.  Every protocol-event category the tracer knows must
//!    appear at least once — a run that silently stops emitting suspicion
//!    or state-transfer events fails here, not in a downstream dashboard.
//!    `--trace <path>` writes this run's Chrome trace-event export
//!    (load it at <https://ui.perfetto.dev>).
//! 2. **Overhead run** — the `sim_engine` figure-7 workload with tracing
//!    *on*.  `--floor <path>` reads the same `{"events_per_sec": N}` floor
//!    `sim_engine --floor` uses and fails if the traced rate fell below
//!    `floor × 0.70 × 0.90` — the engine-regression tolerance plus a 10 %
//!    tracing-overhead allowance.
//!
//! `--json <path>` merges `trace` and `timeline` sections into the shared
//! `BENCH_results.json`.

use saguaro_bench::{
    emit, json_path_from_args, options_from_args, runtime_json, timed_run, trace_path_from_args,
    JsonReport,
};
use saguaro_sim::experiment::ExperimentSpec;
use saguaro_sim::json::{JsonValue, ToJson};
use saguaro_sim::protocol::ProtocolKind;
use saguaro_sim::scenarios::Scenario;
use saguaro_sim::RunTrace;
use saguaro_types::TraceConfig;
use std::path::PathBuf;

/// Same meaning as `sim_engine`'s floor tolerance: 30 % runner-speed slack.
const FLOOR_TOLERANCE: f64 = 0.70;

/// Additional slack the tracing-on run is allowed over the floor: tracing
/// may cost at most 10 % of the engine rate.
const TRACING_ALLOWANCE: f64 = 0.90;

/// Categories the chaos run must produce at least one event in.
const REQUIRED_CATEGORIES: [&str; 9] = [
    "batch",
    "checkpoint",
    "equivocation",
    "fault",
    "snapshot",
    "state_transfer",
    "suspicion",
    "tx",
    "view_change",
];

fn floor_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--floor")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn read_floor(path: &PathBuf) -> Option<f64> {
    let parsed = JsonValue::parse(&std::fs::read_to_string(path).ok()?)?;
    let JsonValue::Object(entries) = parsed else {
        return None;
    };
    entries.iter().find_map(|(k, v)| match v {
        JsonValue::Num(n) if k == "events_per_sec" => Some(*n),
        _ => None,
    })
}

/// The chaos spec: byzantine coordinator deployment under the
/// view-change-storm scenario, with batching, checkpoints and pruning on so
/// every trace category has a producer.
fn chaos_spec(quick: bool, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
        .byzantine()
        .tune(|t| t.batch_size(8).checkpoint_every(16).retained(64));
    spec.seed = seed;
    spec.offered_load_tps = if quick { 800.0 } else { 2_000.0 };
    if quick {
        spec = spec.quick();
    }
    Scenario::ViewChangeStorm
        .apply(spec)
        .trace(TraceConfig::on())
}

fn category_table(trace: &RunTrace) -> String {
    let mut table = String::from("# Trace smoke: view-change-storm chaos run\n");
    for (category, count) in trace.category_counts() {
        table.push_str(&format!("{category:<16} {count:>8}\n"));
    }
    table.push_str(&format!(
        "{:<16} {:>8}  (dropped {})\n",
        "total",
        trace.len(),
        trace.dropped
    ));
    table
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let options = options_from_args(&args);

    // 1. Chaos run: every category must fire.
    let chaos = chaos_spec(options.quick, options.seed).run_collecting();
    let trace = chaos.trace.as_ref().expect("tracing was enabled");
    emit("trace_categories", category_table(trace));

    let counts = trace.category_counts();
    let missing: Vec<&str> = REQUIRED_CATEGORIES
        .iter()
        .copied()
        .filter(|required| !counts.iter().any(|(c, n)| c == required && *n > 0))
        .collect();

    if let Some(path) = trace_path_from_args(&args) {
        let chrome = trace.chrome_json();
        match std::fs::write(&path, &chrome) {
            Ok(()) => eprintln!(
                "wrote {} trace events ({} dropped) to {}",
                trace.len(),
                trace.dropped,
                path.display()
            ),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
        // The export is hand-rendered; make sure it stayed parseable JSON.
        if JsonValue::parse(&chrome).is_none() {
            eprintln!("TRACE REGRESSION: Chrome export is not valid JSON");
            std::process::exit(1);
        }
    }

    // 2. Overhead run: the sim_engine workload with tracing on.
    let mut engine_spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
        .cross_domain(0.2)
        .trace(TraceConfig::on());
    engine_spec.seed = options.seed;
    if options.quick {
        engine_spec = engine_spec.quick().load(1_200.0);
    }
    let traced = timed_run(&engine_spec);
    let events_per_sec = traced.events_per_sec();
    emit(
        "trace_overhead",
        format!(
            "# Engine rate with tracing on (figure-7 topology)\n\
             traced run : {} events in {:.1} ms -> {:.0} events/sec\n",
            traced.artifacts.events_processed, traced.wall_ms, events_per_sec
        ),
    );

    let mut report = JsonReport::new();
    let mut trace_fields = vec![
        ("quick", JsonValue::Bool(options.quick)),
        ("chaos_events", JsonValue::Num(trace.len() as f64)),
        ("chaos_dropped", JsonValue::Num(trace.dropped as f64)),
        (
            "categories",
            JsonValue::Object(
                counts
                    .iter()
                    .map(|(c, n)| (c.to_string(), JsonValue::Num(*n as f64)))
                    .collect(),
            ),
        ),
    ];
    trace_fields.extend(traced.rate_fields());
    trace_fields.push(("runtime", runtime_json(&traced.artifacts)));
    report.add_value("trace", JsonValue::object(trace_fields));
    if let Some(timeline) = &chaos.timeline {
        report.add_value("timeline", timeline.to_json());
    }
    report.merge_into_if_requested(json_path_from_args(&args).as_ref());

    if !missing.is_empty() {
        eprintln!("TRACE REGRESSION: no events in categories: {missing:?}");
        std::process::exit(1);
    }

    if let Some(floor_path) = floor_path_from_args(&args) {
        match read_floor(&floor_path) {
            Some(floor) => {
                let minimum = floor * FLOOR_TOLERANCE * TRACING_ALLOWANCE;
                if events_per_sec < minimum {
                    eprintln!(
                        "TRACE OVERHEAD REGRESSION: {events_per_sec:.0} events/sec with \
                         tracing on is below {minimum:.0} (floor {floor:.0} x {FLOOR_TOLERANCE} \
                         x {TRACING_ALLOWANCE})"
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "trace overhead ok: {events_per_sec:.0} events/sec >= {minimum:.0} \
                     (floor {floor:.0} - 30% - 10% tracing allowance)"
                );
            }
            None => {
                eprintln!("failed to read events_per_sec floor from {floor_path:?}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "trace smoke ok: {} events across {} categories",
        trace.len(),
        counts.len()
    );
}
