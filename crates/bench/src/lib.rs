//! Helpers shared by the figure binaries and the Criterion benches.
//!
//! Every figure of the paper's evaluation (7–13) has:
//!
//! * a binary (`cargo run --release -p saguaro-bench --bin figure7`) that
//!   regenerates the full latency-vs-throughput series and prints it as a
//!   table, and
//! * a Criterion bench (`cargo bench -p saguaro-bench`) that measures one
//!   representative configuration so regressions in protocol cost show up in
//!   CI without re-running the whole sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use saguaro_sim::figures::FigureOptions;

/// Parses the common command-line options of the figure binaries.
///
/// `--quick` shrinks the measurement windows and the load grid so a figure
/// regenerates in seconds (used by CI); `--seed N` changes the RNG seed.
pub fn options_from_args(args: &[String]) -> FigureOptions {
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut options = if quick {
        FigureOptions::smoke()
    } else {
        FigureOptions::default()
    };
    options.seed = seed;
    options
}

/// Prints a rendered figure table to stdout with a separating banner.
pub fn emit(title: &str, table: String) {
    println!("{}", "=".repeat(78));
    println!("{table}");
    let _ = title;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_and_seed_are_parsed() {
        let opts = options_from_args(&["--quick".into(), "--seed".into(), "7".into()]);
        assert!(opts.quick);
        assert_eq!(opts.seed, 7);
        let opts = options_from_args(&[]);
        assert!(!opts.quick);
        assert_eq!(opts.seed, 42);
    }
}
