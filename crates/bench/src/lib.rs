//! Helpers shared by the figure binaries and the Criterion benches.
//!
//! Every figure of the paper's evaluation (7–13) has:
//!
//! * a binary (`cargo run --release -p saguaro-bench --bin figure7`) that
//!   regenerates the full latency-vs-throughput series and prints it as a
//!   table, and
//! * a Criterion bench (`cargo bench -p saguaro-bench`) that measures one
//!   representative configuration so regressions in protocol cost show up in
//!   CI without re-running the whole sweep.
//!
//! The batching ablation has its own binary
//! (`cargo run --release -p saguaro-bench --bin ablation_batch`).
//!
//! All binaries accept `--json <path>`: besides the printed tables, the run's
//! series (and any extra sections the binary adds) are written to `<path>` as
//! a machine-readable `BENCH_results.json` trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use saguaro_sim::figures::{FigureOptions, FigureSeries};
use saguaro_sim::json::{JsonValue, ToJson};
use std::path::PathBuf;

/// Parses the common command-line options of the figure binaries.
///
/// `--quick` shrinks the measurement windows and the load grid so a figure
/// regenerates in seconds (used by CI); `--seed N` changes the RNG seed.
pub fn options_from_args(args: &[String]) -> FigureOptions {
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut options = if quick {
        FigureOptions::smoke()
    } else {
        FigureOptions::default()
    };
    options.seed = seed;
    options
}

/// Parses the `--json <path>` flag shared by the figure/ablation binaries.
pub fn json_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Accumulates the sections of a machine-readable benchmark report and
/// writes them as one JSON object (the `BENCH_results.json` trajectory).
#[derive(Default)]
pub struct JsonReport {
    sections: Vec<(String, JsonValue)>,
}

impl JsonReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named set of figure series.
    pub fn add_series(&mut self, name: &str, series: &[FigureSeries]) {
        self.sections.push((name.to_string(), series.to_json()));
    }

    /// Adds an arbitrary pre-built JSON section.
    pub fn add_value(&mut self, name: &str, value: JsonValue) {
        self.sections.push((name.to_string(), value));
    }

    /// Renders the report as a single JSON object.
    pub fn render(&self) -> String {
        JsonValue::Object(self.sections.clone()).render()
    }

    /// Writes the report to `path` when the `--json` flag asked for one.
    /// I/O errors are reported on stderr but do not abort the binary (the
    /// printed tables are the primary output).
    pub fn write_if_requested(&self, path: Option<&PathBuf>) {
        let Some(path) = path else {
            return;
        };
        match std::fs::write(path, self.render()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Like [`JsonReport::write_if_requested`], but merges this report's
    /// sections into the JSON object already stored at `path` (replacing
    /// sections with the same name, appending new ones) instead of
    /// overwriting the whole file.  A missing or unparseable file degrades
    /// to a plain write, so different benchmark binaries can all target the
    /// shared `BENCH_results.json` trajectory.
    pub fn merge_into_if_requested(&self, path: Option<&PathBuf>) {
        let Some(path) = path else {
            return;
        };
        let mut entries = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| JsonValue::parse(&text))
            .and_then(|v| match v {
                JsonValue::Object(entries) => Some(entries),
                _ => None,
            })
            .unwrap_or_default();
        for (name, value) in &self.sections {
            match entries.iter_mut().find(|(k, _)| k == name) {
                Some((_, slot)) => *slot = value.clone(),
                None => entries.push((name.clone(), value.clone())),
            }
        }
        match std::fs::write(path, JsonValue::Object(entries).render()) {
            Ok(()) => eprintln!("merged into {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Prints a rendered figure table to stdout with a separating banner.
pub fn emit(title: &str, table: String) {
    println!("{}", "=".repeat(78));
    println!("{table}");
    let _ = title;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_and_seed_are_parsed() {
        let opts = options_from_args(&["--quick".into(), "--seed".into(), "7".into()]);
        assert!(opts.quick);
        assert_eq!(opts.seed, 7);
        let opts = options_from_args(&[]);
        assert!(!opts.quick);
        assert_eq!(opts.seed, 42);
    }

    #[test]
    fn json_flag_is_parsed() {
        assert_eq!(json_path_from_args(&[]), None);
        assert_eq!(
            json_path_from_args(&["--json".into(), "out.json".into()]),
            Some(PathBuf::from("out.json"))
        );
        // A trailing --json without a path is ignored.
        assert_eq!(json_path_from_args(&["--json".into()]), None);
    }

    #[test]
    fn report_renders_sections_in_order() {
        let mut report = JsonReport::new();
        report.add_value("a", JsonValue::Num(1.0));
        report.add_series("b", &[]);
        assert_eq!(report.render(), "{\"a\":1,\"b\":[]}");
    }
}
