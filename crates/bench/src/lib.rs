//! Helpers shared by the figure binaries and the Criterion benches.
//!
//! Every figure of the paper's evaluation (7–13) has:
//!
//! * a binary (`cargo run --release -p saguaro-bench --bin figure7`) that
//!   regenerates the full latency-vs-throughput series and prints it as a
//!   table, and
//! * a Criterion bench (`cargo bench -p saguaro-bench`) that measures one
//!   representative configuration so regressions in protocol cost show up in
//!   CI without re-running the whole sweep.
//!
//! The batching ablation has its own binary
//! (`cargo run --release -p saguaro-bench --bin ablation_batch`).
//!
//! All binaries accept `--json <path>`: besides the printed tables, the run's
//! series (and any extra sections the binary adds) are written to `<path>` as
//! a machine-readable `BENCH_results.json` trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use saguaro_sim::experiment::{ExperimentSpec, RunArtifacts};
use saguaro_sim::figures::{FigureOptions, FigureSeries};
use saguaro_sim::json::{JsonValue, ToJson};
use std::path::PathBuf;

/// Parses the common command-line options of the figure binaries.
///
/// `--quick` shrinks the measurement windows and the load grid so a figure
/// regenerates in seconds (used by CI); `--seed N` changes the RNG seed.
pub fn options_from_args(args: &[String]) -> FigureOptions {
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut options = if quick {
        FigureOptions::smoke()
    } else {
        FigureOptions::default()
    };
    options.seed = seed;
    options
}

/// Parses the `--json <path>` flag shared by the figure/ablation binaries.
pub fn json_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Parses the `--trace <path>` flag: where to write the run's Chrome
/// trace-event export (load it at <https://ui.perfetto.dev> or
/// `chrome://tracing`).
pub fn trace_path_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// One wall-clock-timed experiment run: the artifacts plus how long the
/// simulator took to produce them.  Every binary that reports an engine
/// rate goes through this so the `events_per_sec` / `wall_ms` JSON fields
/// mean the same thing in every `BENCH_results.json` section.
pub struct TimedRun {
    /// The run's artifacts (metrics, completions, harvest, instrumentation).
    pub artifacts: RunArtifacts,
    /// Wall-clock time of the timed run, in milliseconds.
    pub wall_ms: f64,
}

impl TimedRun {
    /// Simulator events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.artifacts.events_processed as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    /// The shared rate fields (`events_processed`, `wall_ms`,
    /// `events_per_sec`) every engine-speed JSON section starts from;
    /// binaries append their own extras before rendering.
    pub fn rate_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            (
                "events_processed",
                JsonValue::Num(self.artifacts.events_processed as f64),
            ),
            ("wall_ms", JsonValue::Num(self.wall_ms)),
            ("events_per_sec", JsonValue::Num(self.events_per_sec())),
        ]
    }
}

/// Runs `spec` once untimed (so allocator and page-cache effects stay out
/// of the measured rate — the workloads are deterministic, so the timed run
/// repeats the identical event history) and once timed.
pub fn timed_run(spec: &ExperimentSpec) -> TimedRun {
    let _ = spec.run_collecting();
    timed_run_cold(spec)
}

/// Times a single run without the warm-up pass (for long runs where the
/// doubled wall time would dominate and cache effects do not).
pub fn timed_run_cold(spec: &ExperimentSpec) -> TimedRun {
    let started = std::time::Instant::now();
    let artifacts = spec.run_collecting();
    TimedRun {
        artifacts,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The `runtime` subsection of a benchmark report: simulator-side
/// instrumentation of one run — event-queue high-water mark plus the
/// parallel engine's window/partition counters when the run used it
/// (`"pdes": null` for sequential runs).
pub fn runtime_json(artifacts: &RunArtifacts) -> JsonValue {
    let pdes = artifacts.pdes.as_ref().map_or(JsonValue::Null, |p| {
        JsonValue::object([
            ("partitions", JsonValue::Num(p.partitions as f64)),
            ("windows", JsonValue::Num(p.windows as f64)),
            ("lookahead_us", JsonValue::Num(p.lookahead_us as f64)),
            (
                "partition_events",
                JsonValue::Array(
                    p.partition_events
                        .iter()
                        .map(|e| JsonValue::Num(*e as f64))
                        .collect(),
                ),
            ),
            ("cross_messages", JsonValue::Num(p.cross_messages as f64)),
            ("merge_wall_us", JsonValue::Num(p.merge_wall_us as f64)),
            ("barrier_wall_us", JsonValue::Num(p.barrier_wall_us as f64)),
        ])
    });
    JsonValue::object([
        (
            "events_processed",
            JsonValue::Num(artifacts.events_processed as f64),
        ),
        (
            "peak_pending_events",
            JsonValue::Num(artifacts.peak_pending_events as f64),
        ),
        ("pdes", pdes),
    ])
}

/// Accumulates the sections of a machine-readable benchmark report and
/// writes them as one JSON object (the `BENCH_results.json` trajectory).
#[derive(Default)]
pub struct JsonReport {
    sections: Vec<(String, JsonValue)>,
}

impl JsonReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named set of figure series.
    pub fn add_series(&mut self, name: &str, series: &[FigureSeries]) {
        self.sections.push((name.to_string(), series.to_json()));
    }

    /// Adds an arbitrary pre-built JSON section.
    pub fn add_value(&mut self, name: &str, value: JsonValue) {
        self.sections.push((name.to_string(), value));
    }

    /// Renders the report as a single JSON object.
    pub fn render(&self) -> String {
        JsonValue::Object(self.sections.clone()).render()
    }

    /// Writes the report to `path` when the `--json` flag asked for one.
    /// I/O errors are reported on stderr but do not abort the binary (the
    /// printed tables are the primary output).
    pub fn write_if_requested(&self, path: Option<&PathBuf>) {
        let Some(path) = path else {
            return;
        };
        match std::fs::write(path, self.render()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Like [`JsonReport::write_if_requested`], but merges this report's
    /// sections into the JSON object already stored at `path` (replacing
    /// sections with the same name, appending new ones) instead of
    /// overwriting the whole file.  A missing or unparseable file degrades
    /// to a plain write, so different benchmark binaries can all target the
    /// shared `BENCH_results.json` trajectory.
    pub fn merge_into_if_requested(&self, path: Option<&PathBuf>) {
        let Some(path) = path else {
            return;
        };
        let mut entries = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| JsonValue::parse(&text))
            .and_then(|v| match v {
                JsonValue::Object(entries) => Some(entries),
                _ => None,
            })
            .unwrap_or_default();
        for (name, value) in &self.sections {
            match entries.iter_mut().find(|(k, _)| k == name) {
                Some((_, slot)) => *slot = value.clone(),
                None => entries.push((name.clone(), value.clone())),
            }
        }
        match std::fs::write(path, JsonValue::Object(entries).render()) {
            Ok(()) => eprintln!("merged into {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// Prints a rendered figure table to stdout with a separating banner.
pub fn emit(title: &str, table: String) {
    println!("{}", "=".repeat(78));
    println!("{table}");
    let _ = title;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_and_seed_are_parsed() {
        let opts = options_from_args(&["--quick".into(), "--seed".into(), "7".into()]);
        assert!(opts.quick);
        assert_eq!(opts.seed, 7);
        let opts = options_from_args(&[]);
        assert!(!opts.quick);
        assert_eq!(opts.seed, 42);
    }

    #[test]
    fn json_flag_is_parsed() {
        assert_eq!(json_path_from_args(&[]), None);
        assert_eq!(
            json_path_from_args(&["--json".into(), "out.json".into()]),
            Some(PathBuf::from("out.json"))
        );
        // A trailing --json without a path is ignored.
        assert_eq!(json_path_from_args(&["--json".into()]), None);
    }

    #[test]
    fn trace_flag_is_parsed() {
        assert_eq!(trace_path_from_args(&[]), None);
        assert_eq!(
            trace_path_from_args(&["--trace".into(), "t.json".into()]),
            Some(PathBuf::from("t.json"))
        );
    }

    #[test]
    fn rate_fields_and_runtime_section_share_one_shape() {
        let artifacts = RunArtifacts {
            metrics: Default::default(),
            completions: Vec::new(),
            schedules: Vec::new(),
            events_processed: 5_000,
            harvest: Default::default(),
            state_transfer_messages: 0,
            state_transfer_bytes: 0,
            peak_pending_events: 7,
            population: None,
            pdes: None,
            trace: None,
            timeline: None,
        };
        let run = TimedRun {
            artifacts,
            wall_ms: 500.0,
        };
        assert!((run.events_per_sec() - 10_000.0).abs() < 1e-6);
        let json = JsonValue::Object(
            run.rate_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
        .render();
        assert!(json.contains("\"events_processed\":5000"));
        assert!(json.contains("\"events_per_sec\":10000"));
        let runtime = runtime_json(&run.artifacts).render();
        assert!(runtime.contains("\"peak_pending_events\":7"));
        assert!(runtime.contains("\"pdes\":null"));
    }

    #[test]
    fn report_renders_sections_in_order() {
        let mut report = JsonReport::new();
        report.add_value("a", JsonValue::Num(1.0));
        report.add_series("b", &[]);
        assert_eq!(report.render(), "{\"a\":1,\"b\":[]}");
    }
}
