//! Criterion bench for Figure 13: Byzantine fault-tolerance scalability
//! (domain sizes 4, 7 and 13).

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_hierarchy::Placement;
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_ft_bft");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for faults in [1usize, 2, 4] {
        group.bench_function(format!("f{faults}"), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
                    .byzantine()
                    .placed(Placement::SingleRegion)
                    .with_faults(faults)
                    .quick()
                    .cross_domain(0.10)
                    .load(500.0);
                spec.run().throughput_tps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
