//! Criterion bench for Figure 9: mobile devices at 0 % and 100 % mobility,
//! crash-only domains, nearby regions.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_mobile");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for mobile in [0.0, 1.0] {
        group.bench_function(format!("mobile_{}pct", (mobile * 100.0) as u32), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
                    .quick()
                    .mobile(mobile)
                    .load(600.0);
                spec.run().throughput_tps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
