//! Criterion bench for the DESIGN.md ablations: LCA vs fixed-root
//! coordinator and contention sensitivity of the optimistic protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));

    group.bench_function("lca_coordinator_100pct_cross", |b| {
        b.iter(|| {
            let spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
                .quick()
                .cross_domain(1.0)
                .load(600.0);
            spec.run().throughput_tps
        })
    });
    group.bench_function("fixed_root_coordinator_100pct_cross", |b| {
        b.iter(|| {
            let spec = ExperimentSpec::new(ProtocolKind::Ahl)
                .quick()
                .cross_domain(1.0)
                .load(600.0);
            spec.run().throughput_tps
        })
    });
    for contention in [0.1, 0.9] {
        group.bench_function(
            format!("optimistic_contention_{}pct", (contention * 100.0) as u32),
            |b| {
                b.iter(|| {
                    let spec = ExperimentSpec::new(ProtocolKind::SaguaroOptimistic)
                        .quick()
                        .cross_domain(0.8)
                        .contention(contention)
                        .load(600.0);
                    spec.run().throughput_tps
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
