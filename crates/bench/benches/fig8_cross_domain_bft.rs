//! Criterion bench for Figure 8: Byzantine domains, 20 % cross-domain.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cross_domain_bft");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for proto in [
        ProtocolKind::SaguaroCoordinator,
        ProtocolKind::SaguaroOptimistic,
        ProtocolKind::Ahl,
        ProtocolKind::Sharper,
    ] {
        group.bench_function(proto.label(), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::new(proto)
                    .byzantine()
                    .quick()
                    .cross_domain(0.2)
                    .load(600.0);
                spec.run().throughput_tps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
