//! Criterion bench for Figure 7: one representative run per curve family
//! (coordinator, optimistic, AHL, SharPer) at 20 % cross-domain, crash-only,
//! nearby regions.  The full sweep is produced by the `figure7` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_cross_domain_cft");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for proto in [
        ProtocolKind::SaguaroCoordinator,
        ProtocolKind::SaguaroOptimistic,
        ProtocolKind::Ahl,
        ProtocolKind::Sharper,
    ] {
        group.bench_function(proto.label(), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::new(proto)
                    .quick()
                    .cross_domain(0.2)
                    .load(800.0);
                let m = spec.run();
                assert!(m.committed > 0);
                m.throughput_tps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
