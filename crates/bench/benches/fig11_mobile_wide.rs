//! Criterion bench for Figure 11: mobile devices over the wide-area
//! placement.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_hierarchy::Placement;
use saguaro_sim::{ExperimentSpec, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_mobile_wide");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for mobile in [0.2, 1.0] {
        group.bench_function(format!("mobile_{}pct", (mobile * 100.0) as u32), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::new(ProtocolKind::SaguaroCoordinator)
                    .placed(Placement::WideArea)
                    .quick()
                    .mobile(mobile)
                    .load(500.0);
                spec.run().throughput_tps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
