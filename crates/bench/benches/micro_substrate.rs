//! Microbenchmarks of the substrate: SHA-256, Merkle trees, signature
//! verification and the internal consensus state machines.  These catch
//! regressions in the building blocks underneath the figure benches.

use criterion::{criterion_group, criterion_main, Criterion};
use saguaro_consensus::{Command, ConsensusReplica, Step};
use saguaro_crypto::{sha256, KeyPair, MerkleTree};
use saguaro_types::{DomainId, FailureModel, NodeId, QuorumSpec};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_crypto");
    group.sample_size(20);
    let payload = vec![0u8; 1024];
    group.bench_function("sha256_1k", |b| b.iter(|| sha256(&payload)));

    let leaves: Vec<Vec<u8>> = (0..256).map(|i| format!("tx-{i}").into_bytes()).collect();
    group.bench_function("merkle_256_leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(&leaves).root())
    });

    let kp = KeyPair::for_node(NodeId::new(DomainId::new(1, 0), 0));
    let digest = sha256(b"message");
    group.bench_function("sign_verify", |b| {
        b.iter(|| {
            let s = kp.sign(&digest);
            assert!(saguaro_crypto::sign::verify(&s, &digest));
        })
    });
    group.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_consensus");
    group.sample_size(20);
    for (model, n) in [(FailureModel::Crash, 3u16), (FailureModel::Byzantine, 4)] {
        group.bench_function(format!("{model:?}_commit_100"), |b| {
            b.iter(|| {
                let d = DomainId::new(1, 0);
                let nodes: Vec<NodeId> = (0..n).map(|i| NodeId::new(d, i)).collect();
                let quorum = QuorumSpec::for_size(model, n as usize);
                let mut reps: Vec<ConsensusReplica<Vec<u8>>> = nodes
                    .iter()
                    .map(|id| ConsensusReplica::new(*id, nodes.clone(), quorum))
                    .collect();
                let mut queue: Vec<(usize, NodeId, _)> = Vec::new();
                let mut delivered = 0usize;
                for i in 0..100u8 {
                    let steps = reps[0].propose(vec![i]);
                    route(&nodes, 0, steps, &mut queue, &mut delivered);
                }
                while let Some((to, from, msg)) = queue.pop() {
                    let steps = reps[to].on_message(from, msg);
                    route(&nodes, to, steps, &mut queue, &mut delivered);
                }
                assert!(delivered >= 100 * nodes.len());
                delivered
            })
        });
    }
    group.finish();
}

fn route<C: Command, M: Clone>(
    nodes: &[NodeId],
    origin: usize,
    steps: Vec<Step<C, M>>,
    queue: &mut Vec<(usize, NodeId, M)>,
    delivered: &mut usize,
) {
    for step in steps {
        match step {
            Step::Send { to, msg } => {
                let idx = nodes.iter().position(|n| *n == to).expect("known node");
                queue.push((idx, nodes[origin], msg));
            }
            Step::Broadcast { msg } => {
                for (i, _) in nodes.iter().enumerate() {
                    if i != origin {
                        queue.push((i, nodes[origin], msg.clone()));
                    }
                }
            }
            Step::Deliver { .. } => *delivered += 1,
            Step::ViewChanged { .. } | Step::TakeSnapshot { .. } | Step::InstallSnapshot { .. } => {
            }
        }
    }
}

criterion_group!(benches, bench_crypto, bench_consensus);
criterion_main!(benches);
