//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) slice of the `rand` 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is splitmix64 — statistically fine for simulation jitter and
//! workload sampling, deterministic for a given seed, and *not* cryptographic
//! (neither is the simulation's use of it).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo reduction: biased by at most span / 2^64, irrelevant
                // for simulation workloads.
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..90);
            assert!((5..90).contains(&v));
            let f = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes_and_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
