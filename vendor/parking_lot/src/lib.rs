//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the workspace uses nothing else).  Like the
//! real `parking_lot`, `lock()` does not return a poison `Result`; a
//! poisoned inner lock panics, which matches the workspace's single-threaded
//! simulation use where poisoning cannot occur.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion primitive with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().expect("mutex poisoned"))
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_guards_mutation_and_derefs_to_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(&*m.lock(), &[1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
