//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches use
//! (`benchmark_group`, `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box`).  Instead of statistical
//! analysis it runs each closure `sample_size` times and prints the mean
//! wall-clock time, which is enough for `cargo bench` smoke coverage and for
//! eyeballing regressions offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away (best-effort without
/// unsafe code: a read-volatile-like identity through `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in runs a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` and prints the mean duration of one iteration.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.samples as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!(
            "bench {}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id.as_ref(),
            per_iter * 1e3,
            bencher.iterations
        );
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing each run.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure_sample_size_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 5);
    }
}
