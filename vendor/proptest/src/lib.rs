//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), integer-range
//! and `any::<T>()` strategies, tuple and `collection::vec` combinators, and
//! `prop_assert!` / `prop_assert_eq!`.  Cases are generated from a
//! deterministic RNG seeded per test; there is no shrinking — a failing case
//! panics with the sampled values left to the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The per-test RNG. Deterministic: seeded from the test name, optionally
/// mixed with the `PROPTEST_RNG_SEED` environment variable so CI can rotate
/// the explored cases (e.g. a date-derived seed in a nightly job) while any
/// given seed stays exactly reproducible locally.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(env_seed) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            seed = (seed ^ env_seed).wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(seed))
    }
}

/// The case count a property actually runs: the `PROPTEST_CASES` environment
/// variable overrides the configured value (CI uses a small count on pull
/// requests and a larger one nightly).
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(configured)
        .max(1)
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` (full-range for integers).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain `assert!` offline).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` offline).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..$crate::resolve_cases(config.cases) {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vectors respect the requested size range and element range.
        #[test]
        fn vec_strategy_respects_bounds(values in collection::vec(1u64..50, 1..20)) {
            prop_assert!(!values.is_empty() && values.len() < 20);
            prop_assert!(values.iter().all(|v| (1..50).contains(v)));
        }

        /// Tuple strategies sample each component independently.
        #[test]
        fn tuples_sample_componentwise((a, b, c) in (0u8..6, 0u8..6, 1u64..50)) {
            prop_assert!(a < 6 && b < 6);
            prop_assert!((1..50).contains(&c));
        }
    }

    #[test]
    fn any_u8_covers_range_ends_eventually() {
        let mut rng = crate::TestRng::for_test("coverage");
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[any::<u8>().sample(&mut rng) as usize] = true;
        }
        let covered = seen.iter().filter(|s| **s).count();
        assert!(covered > 200, "covered {covered}");
    }
}
