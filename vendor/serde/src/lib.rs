//! Offline stand-in for `serde`.
//!
//! Nothing in the build environment serializes data (there is no
//! `serde_json` either), but the workspace types carry `Serialize` /
//! `Deserialize` derives so downstream users with the real `serde` get
//! working impls.  Offline, the traits are reduced to markers and the derive
//! macros emit empty impls; swapping this stand-in for the real crates-io
//! `serde` requires no source changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
