//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stand-in reduces `Serialize` / `Deserialize` to
//! marker traits (nothing in the build environment actually serializes), so
//! the derives only have to emit `impl serde::Trait for Type {}` — including
//! the type's generic parameters, parsed by hand since `syn` is unavailable
//! offline.

use proc_macro::{TokenStream, TokenTree};

/// The derived type's name plus its generic parameter list (if any), e.g.
/// `("Foo", Some("<T: Clone, 'a>"))`.
fn parse_item(input: TokenStream) -> (String, Option<String>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("derive input has no type name after `{kw}`");
        };
        // Collect `<...>` immediately following the name, tracking depth so
        // nested generics like `HashMap<K, V>` in bounds don't end the list
        // early.
        let mut generics = String::new();
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            let mut depth = 0i32;
            for tt in iter.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push_str(&tt.to_string());
                generics.push(' ');
                if depth == 0 {
                    break;
                }
            }
        }
        let generics = (!generics.is_empty()).then_some(generics);
        return (name.to_string(), generics);
    }
    panic!("derive input is not a struct, enum or union");
}

/// Strips bounds from a generic parameter list: `<T: Clone, 'a>` → `<T, 'a>`.
fn generic_args(params: &str) -> String {
    let inner = params.trim().trim_start_matches('<').trim_end_matches('>');
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                args.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    let names: Vec<String> = args
        .iter()
        .map(|a| a.split(':').next().unwrap_or("").trim().to_string())
        .collect();
    format!("<{}>", names.join(", "))
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let (params, args) = match &generics {
        Some(g) => (g.clone(), generic_args(g)),
        None => (String::new(), String::new()),
    };
    format!("impl{params} {trait_path} for {name}{args} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("serde::Serialize", input)
}

/// Emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("serde::Deserialize", input)
}
