//! Saguaro — an edge computing-enabled hierarchical permissioned blockchain.
//!
//! This facade crate re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! `saguaro` crate:
//!
//! * [`types`] — identifiers, transactions, configuration.
//! * [`crypto`] — digests, simulated signatures, Merkle trees, certificates.
//! * [`net`] — the discrete-event network/CPU simulator substrate.
//! * [`hierarchy`] — the domain tree, LCA queries, topologies and placements.
//! * [`ledger`] — linear and DAG ledgers, blockchain state, aggregation.
//! * [`consensus`] — Multi-Paxos and PBFT intra-domain consensus.
//! * [`core`] — the Saguaro protocols: coordinator-based and optimistic
//!   cross-domain consensus, lazy ledger propagation, mobile consensus.
//! * [`baselines`] — AHL and SharPer comparators.
//! * [`workload`] — micropayment / ridesharing workload generators.
//! * [`loadgen`] — population-scale load generation: aggregate client
//!   populations and streaming latency histograms.
//! * [`sim`] — the experiment harness regenerating the paper's figures.
//!
//! The experiment engine's entry points are additionally re-exported at the
//! crate root: describe a run with an [`ExperimentSpec`] (protocol ×
//! workload × placement × failure model), execute it with
//! [`ExperimentSpec::run`] or generically with [`run_experiment`], and plug
//! in new protocols/applications via [`ProtocolStack`] and
//! [`workload::Workload`].
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use saguaro_baselines as baselines;
pub use saguaro_consensus as consensus;
pub use saguaro_core as core;
pub use saguaro_crypto as crypto;
pub use saguaro_hierarchy as hierarchy;
pub use saguaro_ledger as ledger;
pub use saguaro_loadgen as loadgen;
pub use saguaro_net as net;
pub use saguaro_sim as sim;
pub use saguaro_trace as trace;
pub use saguaro_types as types;
pub use saguaro_workload as workload;

pub use saguaro_sim::{
    run_experiment, AhlStack, BatchConfig, CoordinatorStack, EngineMode, ExperimentSpec, LoadPoint,
    OptimisticStack, ProtocolKind, ProtocolStack, RidesharingConfig, RunMetrics, SharperStack,
    WorkloadKind,
};
